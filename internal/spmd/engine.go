package spmd

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/vec"
)

// Exec selects how Launch executes task bodies.
type Exec uint8

const (
	// ExecLive is the legacy mode: deterministic cooperative scheduling
	// with immediate effects — every Op, memory access and atomic mutates
	// shared engine state as it executes. Required by fault injection,
	// and the mode all baseline engines run in.
	ExecLive Exec = iota
	// ExecDeferred runs the same cooperative schedule with deferred
	// effects: tasks observe segment-start state plus their own writes,
	// and all effects merge at barriers in task order. This is the
	// reference semantics the parallel scheduler is differential-tested
	// against.
	ExecDeferred
	// ExecParallel runs deferred-effect tasks concurrently on real
	// goroutines, one per task, synchronizing at barriers. Modeled
	// cycles, statistics and outputs are bit-identical to ExecDeferred.
	ExecParallel
)

// Engine executes SPMD launches against one machine model and accumulates
// modeled time and statistics. It is single-client: one kernel pipeline runs
// on it at a time.
type Engine struct {
	Machine *machine.Config
	Target  vec.Target
	TaskSys TaskSystem
	// NumTasks is the default task count for launches (the paper's TASK
	// setting: 16 on Intel, 64 on AMD).
	NumTasks int
	// NoSMT restricts placement to one hardware thread per core (the
	// paper's no-SMT pinning experiments).
	NoSMT bool
	// PinStride is the artifact's TASK "N-D" second field: the distance
	// between the logical CPUs of consecutive tasks (default 1). With
	// stride 2 on 4 logical CPUs, tasks pin to CPUs 0,2,1,3.
	PinStride int
	// StallScale scales all memory stall costs; the GPU model sets it
	// below 1 to reflect latency hiding by high warp occupancy.
	StallScale float64

	// Exec selects the execution strategy. Mid-segment fault injection
	// (index corruption) forces ExecLive regardless of this setting (see
	// execMode); boundary-drawn injection classes (overflow, bit-flip,
	// transient), profiling, tracing and metrics work in every mode.
	Exec Exec

	Mem   *machine.MemModel
	Addr  *machine.AddrSpace
	Pager Pager

	// Budget bounds runs on this engine (modeled cycles, wall-clock
	// deadline, pipe-loop iterations). The zero value disables all limits.
	Budget fault.Budget
	// Inject, when non-nil, deterministically corrupts memory-primitive
	// indices and worklist room checks to exercise failure paths.
	Inject *fault.Injector

	Stats Stats

	// Trace, when non-nil, records kernel launches, barriers, per-task
	// segment spans, pipe-loop iterations and worklist swaps on the
	// modeled and host clocks. Attach before the first launch; all
	// recording points are single-writer by the engine's scheduling
	// structure, so the tracer needs no locking.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives one sample per pipe-loop iteration
	// (frontier size, lane utilization, cache hits, ...).
	Metrics *obs.Metrics

	phase atomic.Pointer[string] // current kernel phase, attached to failure context
	iter  atomic.Int64           // current pipe iteration, attached to failure context

	// phaseNames interns phase-name pointers so MarkPhase — called once per
	// task per kernel — stays allocation-free after the first launch of each
	// kernel (pinned by the backend alloc-regression tests).
	phaseNames sync.Map // string -> *string

	cycles     float64 // modeled time in core cycles
	transferNS float64 // host<->device transfers (GPU only)
	faultNS    float64 // demand-paging stalls charged globally

	segSerialAtomics float64 // serialized (contended) atomic cycles this segment
	activeThreads    int     // for contention scaling, set per launch

	// nArrays/nPush hand out the dense ids that deferred tasks use to
	// direct-index shadow buffers and push-batch tables. arrays is the
	// dense id-ordered registry the checkpoint layer snapshots.
	nArrays int32
	nPush   int32
	arrays  []*Array

	// defPool recycles deferredCtx objects across launches so shadow
	// buffers, traces, logs and batches keep their capacity for the whole
	// kernel pipeline instead of reallocating per launch.
	defPool sync.Pool

	// gen is the engine's reuse generation, bumped by ResetAll. Pooled
	// deferred contexts stamp the generation they were built under; a
	// context acquired under a newer generation drops its layout-dependent
	// state (shadow tables and batch tables keyed by dense ids that the new
	// run reissues) before first use, so a reused engine can never surface a
	// prior run's pending writes — or trip the foreign-array check — through
	// a recycled shadow buffer.
	gen uint64

	// aggScratch holds aggregateSegment's per-core accumulators, reused
	// across segments (aggregation always runs single-threaded).
	aggScratch []float64

	// stallTab caches the exposed stall charge of one memory access per
	// (access kind, hit level), premultiplied by StallScale and the
	// active-thread contention scale. The hot charge sites (live noteAccess,
	// trace replay) reduce to a cache probe plus one table read and one add;
	// each entry is computed once with exactly the operands the uncached
	// ReplayAccess×StallScale path multiplied per access, so accumulated
	// stalls stay bit-identical. Rebuilt by setActiveThreads (every launch),
	// New and ResetAll.
	stallTab [4][machine.NumLevels]float64
	// stallFlat is stallTab flattened to kind*NumLevels+level, indexed by
	// the packed cost bytes a stage-free cooperative segment records in
	// place of a full access trace (see deferredCtx.costs).
	stallFlat [4 * machine.NumLevels]float64

	// opCost caches Target.Lower for every (class, masked) pair together
	// with the per-op compute charge float64(instrs)/IPC, so the accounting
	// hot path (Op/OpN, every memory primitive) is a table read plus counter
	// adds instead of a lowering switch and a float division. The cached
	// cycle value is computed once with the same operands the switch-based
	// path used per call, so accumulated compute stays bit-identical.
	// Rebuilt wherever Target is set: New and ResetAll.
	opCost [vec.NumOpClasses][2]opCostEntry
	// invIPC caches 1/Machine.IPC for the scalar-op charge.
	invIPC float64

	prof *profiler // nil unless EnableProfiling was called

	// attr holds the per-(phase, cost class) cycle buckets the modeled clock
	// is defined over (see attr.go). cycles above is always the canonical
	// fold of these buckets.
	attr attrTable

	obsOpen []iterSpan // open pipe-loop iteration spans, outermost first
	obsBase iterBase   // counter snapshot behind the previous metrics row
}

// ExecFromEnv returns the execution mode selected by the EGACS_HOST_EXEC
// environment variable ("parallel", "cooperative", "live"); ExecLive when
// unset or unrecognized. CI uses it to force every engine onto the parallel
// scheduler under the race detector.
func ExecFromEnv() Exec {
	switch os.Getenv("EGACS_HOST_EXEC") {
	case "parallel":
		return ExecParallel
	case "cooperative":
		return ExecDeferred
	default:
		return ExecLive
	}
}

// New creates an engine for the given machine, target and task count. A task
// count of 0 selects the machine's default. The execution mode defaults to
// EGACS_HOST_EXEC's choice (live when unset); callers override Exec directly.
func New(cfg *machine.Config, target vec.Target, tasks int) *Engine {
	if tasks <= 0 {
		tasks = cfg.DefaultTasks
	}
	scale := cfg.StallHideFactor
	if scale == 0 {
		scale = 1
	}
	e := &Engine{
		Exec:       ExecFromEnv(),
		Machine:    cfg,
		Target:     target,
		TaskSys:    Pthread, // EGACS default: pinned pthread tasking
		NumTasks:   tasks,
		StallScale: scale,
		Mem:        machine.NewMemModel(cfg),
		Addr:       machine.NewAddrSpace(cfg.PageSize),
	}
	e.buildOpCost()
	e.buildStallTab()
	e.attr.init()
	return e
}

// opCostEntry is one cached lowering: dynamic instruction count and the
// modeled compute cycles one such op charges.
type opCostEntry struct {
	instrs int64
	cycles float64
}

// buildOpCost (re)derives the per-(class,masked) lowering cache from the
// current target and machine. Must run after every Target change.
func (e *Engine) buildOpCost() {
	for c := vec.OpClass(0); c < vec.NumOpClasses; c++ {
		for m := 0; m < 2; m++ {
			n := int64(e.Target.Lower(c, m == 1))
			e.opCost[c][m] = opCostEntry{instrs: n, cycles: float64(n) / e.Machine.IPC}
		}
	}
	e.invIPC = 1 / e.Machine.IPC
}

// Width returns the SIMD width of the engine's target.
func (e *Engine) Width() int { return e.Target.Width }

// register assigns the next dense engine-scoped array id.
func (e *Engine) register(a *Array) *Array {
	a.id = e.nArrays
	e.nArrays++
	e.arrays = append(e.arrays, a)
	return a
}

// AllocI allocates a zeroed int32 array with a synthetic address.
func (e *Engine) AllocI(name string, n int) *Array {
	return e.register(&Array{Name: name, I: make([]int32, n), Base: e.Addr.Alloc(int64(n) * 4)})
}

// AllocF allocates a zeroed float32 array with a synthetic address.
func (e *Engine) AllocF(name string, n int) *Array {
	return e.register(&Array{Name: name, F: make([]float32, n), Base: e.Addr.Alloc(int64(n) * 4)})
}

// BindI wraps an existing slice (e.g. a CSR row-pointer array) as an Array,
// assigning it a synthetic address range.
func (e *Engine) BindI(name string, data []int32) *Array {
	return e.register(&Array{Name: name, I: data, Base: e.Addr.Alloc(int64(len(data)) * 4)})
}

// BindF wraps an existing float slice as an Array.
func (e *Engine) BindF(name string, data []float32) *Array {
	return e.register(&Array{Name: name, F: data, Base: e.Addr.Alloc(int64(len(data)) * 4)})
}

// RegisterPushTarget hands out the next dense push-target id; worklists call
// it once at construction so deferred tasks can index their batch table
// directly instead of hashing the target.
func (e *Engine) RegisterPushTarget() int32 {
	id := e.nPush
	e.nPush++
	return id
}

// TimeCycles returns the modeled kernel time in cycles (excluding transfers).
func (e *Engine) TimeCycles() float64 { return e.cycles }

// TimeNS returns the modeled wall time in nanoseconds including transfers
// and paging stalls.
func (e *Engine) TimeNS() float64 {
	return e.Machine.CyclesToNS(e.cycles) + e.transferNS + e.faultNS
}

// TimeMS returns the modeled wall time in milliseconds.
func (e *Engine) TimeMS() float64 { return e.TimeNS() / 1e6 }

// AddTransferBytes charges a host<->device transfer (GPU machines only).
func (e *Engine) AddTransferBytes(bytes int64) {
	e.transferNS += e.Machine.TransferNS(bytes)
}

// AddCycles charges raw cycles to the global clock (used for modeled
// sequential host work between launches), attributed to the host cost class
// under the current phase.
func (e *Engine) AddCycles(c float64) { e.chargeCycles(obs.CostHost, c) }

// ResetTime clears the clock and statistics but keeps caches warm, matching
// the paper's methodology of timing the algorithm after graph loading.
func (e *Engine) ResetTime() {
	e.attr.zero()
	e.refoldCycles()
	e.transferNS = 0
	e.faultNS = 0
	e.Stats = Stats{}
	e.obsOpen = e.obsOpen[:0]
	e.obsBase.stats = Stats{}
}

// ResetAll returns the engine to its post-New state so it can be reused for a
// new, unrelated run — the request-pool path of the serving layer. Where
// ResetTime keeps caches warm for the same bound instance, ResetAll forgets
// everything a prior run could leak into the next one: the array registry is
// cleared (dense ids restart at 0 and no prior arrays remain reachable), the
// synthetic address space and cache tags reset, the clocks, statistics,
// budget, injector, pager and observability attachments drop, and pooled
// deferred contexts from earlier runs are invalidated by a generation bump
// (their shadow and batch tables are keyed by dense ids the new run will
// reissue). Layout-independent buffer capacity — op logs, access traces,
// batch item slots, aggregation scratch — is retained, which is the point of
// pooling the engine at all.
//
// The machine model is fixed at New; target and tasks are reconfigurable per
// reuse (tasks <= 0 selects the machine default). Slices handed out by a
// previous run (result arrays) remain valid snapshots: a fresh run allocates
// fresh backing arrays and never touches them.
func (e *Engine) ResetAll(target vec.Target, tasks int) {
	if tasks <= 0 {
		tasks = e.Machine.DefaultTasks
	}
	e.Target = target
	e.buildOpCost()
	e.TaskSys = Pthread
	e.NumTasks = tasks
	e.NoSMT = false
	e.PinStride = 0
	if e.StallScale = e.Machine.StallHideFactor; e.StallScale == 0 {
		e.StallScale = 1
	}
	e.Exec = ExecFromEnv()
	e.Pager = nil
	e.Budget = fault.Budget{}
	e.Inject = nil
	e.Trace = nil
	e.Metrics = nil
	e.prof = nil

	e.attr.reset()
	e.refoldCycles()
	e.transferNS = 0
	e.faultNS = 0
	e.segSerialAtomics = 0
	e.activeThreads = 0
	e.buildStallTab()
	e.Stats = Stats{}
	e.phase.Store(nil)
	e.iter.Store(0)
	e.obsOpen = e.obsOpen[:0]
	e.obsBase = iterBase{}

	for i := range e.arrays {
		e.arrays[i] = nil
	}
	e.arrays = e.arrays[:0]
	e.nArrays = 0
	e.nPush = 0
	e.Addr.Reset()
	e.Mem.Reset()
	e.gen++
}

// execMode resolves the effective execution mode for the next launch.
// Mid-segment index corruption draws one variate per memory access, so only
// the live cooperative path keeps its draw order deterministic; that class
// forces ExecLive. Boundary-drawn classes (overflow at worklist
// materialization, bit-flip and transient faults at single-writer windows)
// keep the configured mode. Profiling attributes through per-task phase logs
// in the deferred modes (see profiler.foldTask) and no longer constrains the
// mode.
func (e *Engine) execMode() Exec {
	if e.Inject != nil && e.Inject.LiveOnly() {
		return ExecLive
	}
	return e.Exec
}

// DeferredExec reports whether launches on this engine run with deferred
// effects (serially or in parallel). The worklist layer uses it to enable
// growth on lists whose deferred reservations may exceed the live-mode
// capacity bound.
func (e *Engine) DeferredExec() bool { return e.execMode() != ExecLive }

// phaseName returns the current kernel phase for failure context.
func (e *Engine) phaseName() string {
	if p := e.phase.Load(); p != nil {
		return *p
	}
	return ""
}

// hwThreadOf maps a task index to a hardware thread under the pinning
// policy: tasks fill one thread per core first, then additional SMT ways
// (Linux-style logical CPU enumeration, as the paper's pinned runs use).
func (e *Engine) hwThreadOf(task int) int {
	h := e.Machine.HWThreads()
	if e.NoSMT {
		h = e.Machine.Cores
	}
	d := e.PinStride
	if d <= 1 {
		return task % h
	}
	// Strided pinning with wrap offset, as the artifact's Makefile
	// documents: 4-2 places tasks on CPUs 0,2,1,3.
	return (task*d + task*d/h) % h
}

func (e *Engine) coreOf(hwThread int) int { return hwThread % e.Machine.Cores }

// LaunchEmpty models launching n tasks that do nothing: the Table II
// microbenchmark condition.
func (e *Engine) LaunchEmpty(n int) {
	if n <= 0 {
		n = e.NumTasks
	}
	e.Stats.Launches++
	e.chargeCycles(obs.CostLaunch, e.Machine.NSToCycles(e.TaskSys.LaunchCostNS(n, true)))
}

// MarkIteration records the current pipe-loop iteration for failure context.
func (e *Engine) MarkIteration(i int64) { e.iter.Store(i) }

// newTask builds one TaskCtx for a launch of n tasks. Live tasks account
// directly into the engine's stats; deferred tasks get a private shard and
// effect context. withChans attaches the cooperative scheduler's handoff
// channels.
func (e *Engine) newTask(i, n int, mode Exec, withChans bool) *TaskCtx {
	hwt := e.hwThreadOf(i)
	tc := &TaskCtx{
		E:     e,
		Index: i,
		Count: n,
		Width: e.Target.Width,
		hw:    hwt,
		core:  e.coreOf(hwt),
	}
	if mode == ExecLive {
		tc.st = &e.Stats
	} else {
		tc.st = &tc.shard
		tc.def = e.getDeferredCtx()
		// Cooperative deferred tasks run strictly serially in task order,
		// so a segment the driver marks stage-free may probe the cache
		// during execution instead of recording a trace (MarkStageFree).
		tc.serialDef = mode == ExecDeferred
	}
	if withChans {
		tc.resume = make(chan struct{})
		tc.yield = make(chan struct{})
	}
	return tc
}

// getDeferredCtx acquires a pooled deferred-effect context. Trace
// compression (line-level access dedup) is enabled only when no pager is
// attached: with demand paging every access must replay at its own address.
// A context pooled before the last ResetAll drops its dense-id-keyed state
// first (see Engine.gen).
func (e *Engine) getDeferredCtx() *deferredCtx {
	d, _ := e.defPool.Get().(*deferredCtx)
	if d == nil {
		d = &deferredCtx{gen: e.gen}
	} else if d.gen != e.gen {
		d.dropLayout()
		d.gen = e.gen
	}
	if e.Pager == nil {
		d.dedupShift = e.Mem.LineShift()
	} else {
		d.dedupShift = 0
	}
	return d
}

// releaseTasks returns the tasks' deferred contexts to the engine pool at
// the end of a launch (including error paths), carrying buffer capacity and
// shadow allocations over to the next launch.
func (e *Engine) releaseTasks(tcs []*TaskCtx) {
	for _, tc := range tcs {
		if tc == nil || tc.def == nil {
			continue
		}
		tc.def.reset()
		e.defPool.Put(tc.def)
		tc.def = nil
	}
}

// setActiveThreads caps the contention-scaling thread count at the number of
// hardware threads available under the pinning policy.
func (e *Engine) setActiveThreads(n int) {
	hw := e.Machine.HWThreads()
	if e.NoSMT {
		hw = e.Machine.Cores
	}
	e.activeThreads = n
	if e.activeThreads > hw {
		e.activeThreads = hw
	}
	e.buildStallTab()
}

// buildStallTab (re)derives the per-(kind, level) stall-charge cache from the
// current machine, StallScale and active-thread count. AccPlain's row stays
// zero (stores retire through the write buffer); AccStream stalls only when
// the line is not already in L1.
func (e *Engine) buildStallTab() {
	for lvl := machine.Level(0); lvl < machine.NumLevels; lvl++ {
		e.stallTab[machine.AccLoad][lvl] = e.Machine.LoadCost(lvl, e.activeThreads) * e.StallScale
		e.stallTab[machine.AccGather][lvl] = e.Machine.GatherCost(lvl, e.activeThreads) * e.StallScale
		e.stallTab[machine.AccStream][lvl] = e.Machine.LoadCost(lvl, e.activeThreads) * e.StallScale
	}
	e.stallTab[machine.AccStream][machine.L1] = 0
	for kind := 0; kind < 4; kind++ {
		for lvl := machine.Level(0); lvl < machine.NumLevels; lvl++ {
			e.stallFlat[kind*int(machine.NumLevels)+int(lvl)] = e.stallTab[kind][lvl]
		}
	}
}

// taskError converts a recovered task panic into the typed launch error.
func (e *Engine) taskError(tc *TaskCtx) error {
	if tf, ok := tc.panicked.(taskFailure); ok {
		return fmt.Errorf("task %d (kernel %q, iteration %d): %w",
			tc.Index, e.phaseName(), e.iter.Load(), tf.err)
	}
	return &fault.PanicError{
		Task: tc.Index, Kernel: e.phaseName(), Iteration: e.iter.Load(),
		Value: tc.panicked,
	}
}

// Launch runs body on n tasks (0 selects the engine default) and advances
// the modeled clock. Tasks may call TaskCtx.Barrier; all live tasks
// synchronize there. Depending on the engine's execution mode the tasks run
// on the deterministic cooperative scheduler (ExecLive with immediate
// effects, ExecDeferred with barrier-merged effects) or concurrently on real
// goroutines (ExecParallel). All modes produce identical modeled time; the
// deferred modes additionally produce identical statistics and outputs to
// each other.
//
// Launch returns a typed error (matching the internal/fault taxonomy) when a
// task fails via TaskCtx.Fail, when a task body panics, or when the engine's
// budget is exhausted at the launch boundary. A failing launch drains and
// aborts all sibling tasks before returning, so no goroutines leak. Call
// sites that predate the failure model may ignore the result: without a
// budget or injector configured, the only error source is a kernel bug.
func (e *Engine) Launch(n int, body func(*TaskCtx)) error {
	return e.launch(n, body, true)
}

// ResumeLaunch is Launch without the launch-cost accounting: no Launches
// increment and no launch-cost cycles. The recovery layer uses it to re-enter
// an outlined pipe body after a rollback — the restored checkpoint already
// contains the original launch's accounting, so charging again would diverge
// modeled time from an undisturbed run.
func (e *Engine) ResumeLaunch(n int, body func(*TaskCtx)) error {
	return e.launch(n, body, false)
}

func (e *Engine) launch(n int, body func(*TaskCtx), charge bool) error {
	if err := e.Budget.CheckCtx(); err != nil {
		return err
	}
	if err := e.Budget.CheckCycles(e.cycles); err != nil {
		return err
	}
	if n <= 0 {
		n = e.NumTasks
	}
	var launchCyc, launchHost float64
	if e.Trace != nil {
		launchCyc, launchHost = e.cycles, e.Trace.HostNow()
	}
	if charge {
		e.Stats.Launches++
		e.chargeCycles(obs.CostLaunch, e.Machine.NSToCycles(e.TaskSys.LaunchCostNS(n, false)))
	}
	e.setActiveThreads(n)

	mode := e.execMode()
	var err error
	if mode == ExecParallel {
		err = e.runParallel(n, body)
	} else {
		err = e.runCooperative(n, mode, body)
	}
	if e.Trace != nil {
		e.traceLaunch(launchCyc, launchHost, n)
	}
	return err
}

// runCooperative executes a launch on the deterministic cooperative
// scheduler: one goroutine per task, resumed one at a time in task order,
// yielding at barriers. In ExecDeferred mode each segment's private effects
// merge in task order before the segment cost aggregates.
func (e *Engine) runCooperative(n int, mode Exec, body func(*TaskCtx)) error {
	tcs := make([]*TaskCtx, n)
	defer e.releaseTasks(tcs)
	for i := 0; i < n; i++ {
		tc := e.newTask(i, n, mode, true)
		tcs[i] = tc
		go func(tc *TaskCtx) {
			defer func() {
				if r := recover(); r != nil {
					if _, isAbort := r.(abortSentinel); !isAbort {
						tc.panicked = r
					}
				}
				tc.done = true
				tc.yield <- struct{}{}
			}()
			<-tc.resume
			if tc.abort {
				return
			}
			body(tc)
		}(tc)
	}

	drain := func(failed *TaskCtx) {
		for _, other := range tcs {
			if other != failed && !other.done {
				other.abort = true
				other.resume <- struct{}{}
				<-other.yield
			}
		}
	}

	running := n
	for running > 0 {
		for _, tc := range tcs {
			if tc.done {
				continue
			}
			tc.resume <- struct{}{}
			<-tc.yield
			if tc.panicked != nil {
				// Drain remaining tasks so their goroutines exit, then
				// surface the failure as a typed error.
				drain(tc)
				return e.taskError(tc)
			}
		}
		if mode != ExecLive {
			if err := e.mergeSegment(tcs); err != nil {
				drain(nil)
				return err
			}
		}
		e.aggregateSegment(tcs)
		running = 0
		for _, tc := range tcs {
			if !tc.done {
				running++
			}
		}
		if running > 0 {
			e.chargeBarrier(n)
		}
	}
	return nil
}

// LaunchNoBarrier runs body on n tasks that never call TaskCtx.Barrier — the
// common single-segment launch emitted for per-kernel host pipelines. In the
// serial modes the bodies run inline on the calling goroutine in task order,
// eliminating all goroutine and channel overhead; in parallel mode they fan
// out on a WaitGroup without barrier machinery. Effects and costs are
// identical to Launch for barrier-free bodies. A body that does call Barrier
// fails with a typed error.
func (e *Engine) LaunchNoBarrier(n int, body func(*TaskCtx)) error {
	if err := e.Budget.CheckCtx(); err != nil {
		return err
	}
	if err := e.Budget.CheckCycles(e.cycles); err != nil {
		return err
	}
	if n <= 0 {
		n = e.NumTasks
	}
	var launchCyc, launchHost float64
	if e.Trace != nil {
		launchCyc, launchHost = e.cycles, e.Trace.HostNow()
	}
	e.Stats.Launches++
	e.chargeCycles(obs.CostLaunch, e.Machine.NSToCycles(e.TaskSys.LaunchCostNS(n, false)))
	e.setActiveThreads(n)

	mode := e.execMode()
	tcs := make([]*TaskCtx, n)
	defer e.releaseTasks(tcs)
	for i := 0; i < n; i++ {
		tcs[i] = e.newTask(i, n, mode, false)
	}

	run := func(tc *TaskCtx) {
		defer func() {
			if r := recover(); r != nil {
				if _, isAbort := r.(abortSentinel); !isAbort {
					tc.panicked = r
				}
			}
		}()
		body(tc)
	}

	if mode == ExecParallel {
		var wg sync.WaitGroup
		for _, tc := range tcs {
			wg.Add(1)
			go func(tc *TaskCtx) {
				defer wg.Done()
				run(tc)
			}(tc)
		}
		wg.Wait()
	} else {
		for _, tc := range tcs {
			run(tc)
			if tc.panicked != nil {
				break
			}
		}
	}

	// Deterministic failure selection: the lowest-index failed task wins,
	// matching the cooperative scheduler's sweep order.
	for _, tc := range tcs {
		if tc.panicked != nil {
			return e.taskError(tc)
		}
	}

	if mode != ExecLive {
		if err := e.mergeSegment(tcs); err != nil {
			return err
		}
	}
	e.aggregateSegment(tcs)
	if e.Trace != nil {
		e.traceLaunch(launchCyc, launchHost, n)
	}
	return nil
}

// aggregateSegment folds the per-task compute and stall cycles accumulated
// since the previous barrier into one segment duration, modeling SMT
// resource sharing: hardware threads on a core share issue bandwidth
// (compute adds) but overlap memory stalls (stall maxes with the co-resident
// thread's compute). Contended atomics additionally impose a global
// serialization floor.
//
// The segment's cost is charged into the attribution buckets of the current
// phase, decomposed by cost class along whatever bound the winning core: the
// serial-atomic floor charges whole to CostAtomicSerial, a stall-bound core
// charges its slowest thread's per-class compute+stall parts, and a
// compute-bound core charges the per-class sum of its tasks' issue cycles.
// The clock then re-derives from the buckets (refoldCycles), so the per-class
// decomposition sums to the clock bit-exactly by construction. All selection
// arithmetic runs on canonical per-task folds (foldClasses), which are
// mode-invariant, so the winner — and with it the whole decomposition — is
// identical across execution modes and backends.
func (e *Engine) aggregateSegment(tcs []*TaskCtx) {
	cores := e.Machine.Cores
	if len(e.aggScratch) < 2*cores {
		e.aggScratch = make([]float64, 2*cores)
	} else {
		for i := range e.aggScratch[:2*cores] {
			e.aggScratch[i] = 0
		}
	}
	coreCompute := e.aggScratch[:cores]
	coreThreadMax := e.aggScratch[cores : 2*cores]
	tr := e.Trace
	var segPhase string
	if tr != nil {
		if segPhase = e.phaseName(); segPhase == "" {
			segPhase = "task"
		}
	}
	for _, tc := range tcs {
		comp := foldClasses(&tc.comp)
		stall := foldClasses(&tc.stl)
		if tr != nil {
			// Per-task segment span: starts at the segment-start clock,
			// lasts the task's own compute+stall. Both are pure modeled
			// quantities, identical in every execution mode.
			if d := comp + stall; d > 0 {
				tr.CompleteArg(obs.ProcModeled, obs.TidTask0+tc.Index, segPhase,
					e.usCycles(e.cycles), e.usCycles(d), "stall_cycles", int64(stall))
			}
		}
		coreCompute[tc.core] += comp
		if t := comp + stall; t > coreThreadMax[tc.core] {
			coreThreadMax[tc.core] = t
		}
	}
	var seg float64
	segCore := -1
	for c := 0; c < cores; c++ {
		t := coreCompute[c]
		if coreThreadMax[c] > t {
			t = coreThreadMax[c]
		}
		if t > seg {
			seg = t
			segCore = c
		}
	}
	var parts costVec
	if e.segSerialAtomics > seg {
		parts[obs.CostAtomicSerial] = e.segSerialAtomics
	} else if segCore >= 0 {
		if coreThreadMax[segCore] > coreCompute[segCore] {
			// Stall-bound: the segment lasts as long as the winning core's
			// slowest thread. Re-find it with the same strict-max, first-wins
			// scan that built coreThreadMax, and charge that task's parts.
			var best *TaskCtx
			var bt float64
			for _, tc := range tcs {
				if tc.core != segCore {
					continue
				}
				if t := foldClasses(&tc.comp) + foldClasses(&tc.stl); t > bt {
					bt = t
					best = tc
				}
			}
			for k := range parts {
				parts[k] = best.comp[k] + best.stl[k]
			}
		} else {
			// Compute-bound: issue bandwidth serializes the core's tasks, so
			// the segment is the per-class sum of their issue cycles.
			for _, tc := range tcs {
				if tc.core != segCore {
					continue
				}
				for k := range parts {
					parts[k] += tc.comp[k]
				}
			}
		}
	}
	e.segSerialAtomics = 0
	for _, tc := range tcs {
		tc.comp = costVec{}
		tc.stl = costVec{}
	}
	slot := &e.attr.vals[e.attr.cur]
	for k := range parts {
		slot[k] += parts[k]
	}
	e.refoldCycles()
}
