package spmd

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/vec"
)

// Engine executes SPMD launches against one machine model and accumulates
// modeled time and statistics. It is single-client: one kernel pipeline runs
// on it at a time.
type Engine struct {
	Machine *machine.Config
	Target  vec.Target
	TaskSys TaskSystem
	// NumTasks is the default task count for launches (the paper's TASK
	// setting: 16 on Intel, 64 on AMD).
	NumTasks int
	// NoSMT restricts placement to one hardware thread per core (the
	// paper's no-SMT pinning experiments).
	NoSMT bool
	// PinStride is the artifact's TASK "N-D" second field: the distance
	// between the logical CPUs of consecutive tasks (default 1). With
	// stride 2 on 4 logical CPUs, tasks pin to CPUs 0,2,1,3.
	PinStride int
	// StallScale scales all memory stall costs; the GPU model sets it
	// below 1 to reflect latency hiding by high warp occupancy.
	StallScale float64

	Mem   *machine.MemModel
	Addr  *machine.AddrSpace
	Pager Pager

	// Budget bounds runs on this engine (modeled cycles, wall-clock
	// deadline, pipe-loop iterations). The zero value disables all limits.
	Budget fault.Budget
	// Inject, when non-nil, deterministically corrupts memory-primitive
	// indices and worklist room checks to exercise failure paths.
	Inject *fault.Injector

	Stats Stats

	phase string // current kernel phase, attached to failure context
	iter  int64  // current pipe iteration, attached to failure context

	cycles     float64 // modeled time in core cycles
	transferNS float64 // host<->device transfers (GPU only)
	faultNS    float64 // demand-paging stalls charged globally

	segSerialAtomics float64 // serialized (contended) atomic cycles this segment
	activeThreads    int     // for contention scaling, set per launch

	prof *profiler // nil unless EnableProfiling was called
}

// New creates an engine for the given machine, target and task count. A task
// count of 0 selects the machine's default.
func New(cfg *machine.Config, target vec.Target, tasks int) *Engine {
	if tasks <= 0 {
		tasks = cfg.DefaultTasks
	}
	scale := cfg.StallHideFactor
	if scale == 0 {
		scale = 1
	}
	return &Engine{
		Machine:    cfg,
		Target:     target,
		TaskSys:    Pthread, // EGACS default: pinned pthread tasking
		NumTasks:   tasks,
		StallScale: scale,
		Mem:        machine.NewMemModel(cfg),
		Addr:       machine.NewAddrSpace(cfg.PageSize),
	}
}

// Width returns the SIMD width of the engine's target.
func (e *Engine) Width() int { return e.Target.Width }

// AllocI allocates a zeroed int32 array with a synthetic address.
func (e *Engine) AllocI(name string, n int) *Array {
	return &Array{Name: name, I: make([]int32, n), Base: e.Addr.Alloc(int64(n) * 4)}
}

// AllocF allocates a zeroed float32 array with a synthetic address.
func (e *Engine) AllocF(name string, n int) *Array {
	return &Array{Name: name, F: make([]float32, n), Base: e.Addr.Alloc(int64(n) * 4)}
}

// BindI wraps an existing slice (e.g. a CSR row-pointer array) as an Array,
// assigning it a synthetic address range.
func (e *Engine) BindI(name string, data []int32) *Array {
	return &Array{Name: name, I: data, Base: e.Addr.Alloc(int64(len(data)) * 4)}
}

// BindF wraps an existing float slice as an Array.
func (e *Engine) BindF(name string, data []float32) *Array {
	return &Array{Name: name, F: data, Base: e.Addr.Alloc(int64(len(data)) * 4)}
}

// TimeCycles returns the modeled kernel time in cycles (excluding transfers).
func (e *Engine) TimeCycles() float64 { return e.cycles }

// TimeNS returns the modeled wall time in nanoseconds including transfers
// and paging stalls.
func (e *Engine) TimeNS() float64 {
	return e.Machine.CyclesToNS(e.cycles) + e.transferNS + e.faultNS
}

// TimeMS returns the modeled wall time in milliseconds.
func (e *Engine) TimeMS() float64 { return e.TimeNS() / 1e6 }

// AddTransferBytes charges a host<->device transfer (GPU machines only).
func (e *Engine) AddTransferBytes(bytes int64) {
	e.transferNS += e.Machine.TransferNS(bytes)
}

// AddCycles charges raw cycles to the global clock (used for modeled
// sequential host work between launches).
func (e *Engine) AddCycles(c float64) { e.cycles += c }

// ResetTime clears the clock and statistics but keeps caches warm, matching
// the paper's methodology of timing the algorithm after graph loading.
func (e *Engine) ResetTime() {
	e.cycles = 0
	e.transferNS = 0
	e.faultNS = 0
	e.Stats = Stats{}
}

// hwThreadOf maps a task index to a hardware thread under the pinning
// policy: tasks fill one thread per core first, then additional SMT ways
// (Linux-style logical CPU enumeration, as the paper's pinned runs use).
func (e *Engine) hwThreadOf(task int) int {
	h := e.Machine.HWThreads()
	if e.NoSMT {
		h = e.Machine.Cores
	}
	d := e.PinStride
	if d <= 1 {
		return task % h
	}
	// Strided pinning with wrap offset, as the artifact's Makefile
	// documents: 4-2 places tasks on CPUs 0,2,1,3.
	return (task*d + task*d/h) % h
}

func (e *Engine) coreOf(hwThread int) int { return hwThread % e.Machine.Cores }

// LaunchEmpty models launching n tasks that do nothing: the Table II
// microbenchmark condition.
func (e *Engine) LaunchEmpty(n int) {
	if n <= 0 {
		n = e.NumTasks
	}
	e.Stats.Launches++
	e.cycles += e.Machine.NSToCycles(e.TaskSys.LaunchCostNS(n, true))
}

// MarkIteration records the current pipe-loop iteration for failure context.
func (e *Engine) MarkIteration(i int64) { e.iter = i }

// Launch runs body on n tasks (0 selects the engine default) with
// deterministic cooperative scheduling, and advances the modeled clock.
// Tasks may call TaskCtx.Barrier; all live tasks synchronize there.
//
// Launch returns a typed error (matching the internal/fault taxonomy) when a
// task fails via TaskCtx.Fail, when a task body panics, or when the engine's
// budget is exhausted at the launch boundary. A failing launch drains and
// aborts all sibling tasks before returning, so no goroutines leak. Call
// sites that predate the failure model may ignore the result: without a
// budget or injector configured, the only error source is a kernel bug.
func (e *Engine) Launch(n int, body func(*TaskCtx)) error {
	if err := e.Budget.CheckCtx(); err != nil {
		return err
	}
	if err := e.Budget.CheckCycles(e.cycles); err != nil {
		return err
	}
	if n <= 0 {
		n = e.NumTasks
	}
	e.Stats.Launches++
	e.cycles += e.Machine.NSToCycles(e.TaskSys.LaunchCostNS(n, false))

	hw := e.Machine.HWThreads()
	if e.NoSMT {
		hw = e.Machine.Cores
	}
	e.activeThreads = n
	if e.activeThreads > hw {
		e.activeThreads = hw
	}

	tcs := make([]*TaskCtx, n)
	for i := 0; i < n; i++ {
		hwt := e.hwThreadOf(i)
		tc := &TaskCtx{
			E:      e,
			Index:  i,
			Count:  n,
			Width:  e.Target.Width,
			hw:     hwt,
			core:   e.coreOf(hwt),
			resume: make(chan struct{}),
			yield:  make(chan struct{}),
		}
		tcs[i] = tc
		go func(tc *TaskCtx) {
			defer func() {
				if r := recover(); r != nil {
					if _, isAbort := r.(abortSentinel); !isAbort {
						tc.panicked = r
					}
				}
				tc.done = true
				tc.yield <- struct{}{}
			}()
			<-tc.resume
			if tc.abort {
				return
			}
			body(tc)
		}(tc)
	}

	running := n
	for running > 0 {
		for _, tc := range tcs {
			if tc.done {
				continue
			}
			tc.resume <- struct{}{}
			<-tc.yield
			if tc.panicked != nil {
				// Drain remaining tasks so their goroutines exit, then
				// surface the failure as a typed error.
				for _, other := range tcs {
					if other != tc && !other.done {
						other.abort = true
						other.resume <- struct{}{}
						<-other.yield
					}
				}
				if tf, ok := tc.panicked.(taskFailure); ok {
					return fmt.Errorf("task %d (kernel %q, iteration %d): %w",
						tc.Index, e.phase, e.iter, tf.err)
				}
				return &fault.PanicError{
					Task: tc.Index, Kernel: e.phase, Iteration: e.iter,
					Value: tc.panicked,
				}
			}
		}
		e.cycles += e.aggregateSegment(tcs)
		running = 0
		for _, tc := range tcs {
			if !tc.done {
				running++
			}
		}
		if running > 0 {
			e.Stats.Barriers++
			e.cycles += e.Machine.BarrierCost(n)
		}
	}
	return nil
}

// aggregateSegment folds the per-task compute and stall cycles accumulated
// since the previous barrier into one segment duration, modeling SMT
// resource sharing: hardware threads on a core share issue bandwidth
// (compute adds) but overlap memory stalls (stall maxes with the co-resident
// thread's compute). Contended atomics additionally impose a global
// serialization floor.
func (e *Engine) aggregateSegment(tcs []*TaskCtx) float64 {
	cores := e.Machine.Cores
	coreCompute := make([]float64, cores)
	coreThreadMax := make([]float64, cores)
	for _, tc := range tcs {
		coreCompute[tc.core] += tc.compute
		if t := tc.compute + tc.stall; t > coreThreadMax[tc.core] {
			coreThreadMax[tc.core] = t
		}
		tc.compute, tc.stall = 0, 0
	}
	var seg float64
	for c := 0; c < cores; c++ {
		t := coreCompute[c]
		if coreThreadMax[c] > t {
			t = coreThreadMax[c]
		}
		if t > seg {
			seg = t
		}
	}
	if e.segSerialAtomics > seg {
		seg = e.segSerialAtomics
	}
	e.segSerialAtomics = 0
	return seg
}
