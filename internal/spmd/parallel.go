package spmd

import "sync"

// phaser synchronizes one parallel launch: tasks run on real goroutines and
// meet at barriers; the last arriver (or the last finisher) runs the segment
// boundary — deferred-effect merge in task order, segment-cost aggregation,
// and barrier cost — while holding the phaser lock. The lock's acquire/
// release pairs give every task a happens-before edge onto the committed
// state the boundary wrote, so the next segment reads merged data without
// further synchronization.
type phaser struct {
	mu   sync.Mutex
	cond *sync.Cond
	e    *Engine
	tcs  []*TaskCtx
	n    int // launch size, for barrier costing

	arrived  int    // tasks waiting at the current barrier
	live     int    // tasks that have not finished their body
	gen      uint64 // barrier generation, advanced at each boundary
	aborted  bool   // a task failed or a merge failed; everyone unwinds
	mergeErr error  // first boundary-merge failure
}

func newPhaser(e *Engine, tcs []*TaskCtx, n int) *phaser {
	p := &phaser{e: e, tcs: tcs, n: n, live: n}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// boundary commits the segment that just ended. Caller holds p.mu. A merge
// failure flips the phaser into the aborted state; the caller is responsible
// for waking waiters and unwinding itself.
func (p *phaser) boundary(tasksRemain bool) {
	e := p.e
	if err := e.mergeSegment(p.tcs); err != nil {
		if p.mergeErr == nil {
			p.mergeErr = err
		}
		p.aborted = true
		return
	}
	e.aggregateSegment(p.tcs)
	if tasksRemain {
		e.chargeBarrier(p.n)
	}
}

// barrier blocks the task until every live task arrives, then releases the
// generation. The last arriver runs the boundary. Panics abortSentinel when
// the launch is unwinding.
func (p *phaser) barrier() {
	p.mu.Lock()
	if p.aborted {
		p.mu.Unlock()
		panic(abortSentinel{})
	}
	p.arrived++
	if p.arrived == p.live {
		p.boundary(true)
		p.arrived = 0
		p.gen++
		p.cond.Broadcast()
		aborted := p.aborted
		p.mu.Unlock()
		if aborted {
			panic(abortSentinel{})
		}
		return
	}
	gen := p.gen
	for gen == p.gen && !p.aborted {
		p.cond.Wait()
	}
	aborted := p.aborted
	p.mu.Unlock()
	if aborted {
		panic(abortSentinel{})
	}
}

// taskDone removes a finished task from the live set. If its exit completes
// the current barrier's arrival count, the boundary runs here; if it was the
// last live task, the final (barrier-free) boundary runs here.
func (p *phaser) taskDone() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.live--
	if p.aborted {
		return
	}
	if p.live > 0 && p.arrived == p.live {
		p.boundary(true)
		p.arrived = 0
		p.gen++
		p.cond.Broadcast()
	} else if p.live == 0 {
		p.boundary(false)
	}
}

// abort wakes every waiter into the unwind path.
func (p *phaser) abort() {
	p.mu.Lock()
	p.aborted = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// runParallel executes a launch with one real goroutine per task under
// deferred-effect semantics. Barrier synchronization, effect merging and
// cost aggregation run through the phaser; the result is bit-identical to
// the ExecDeferred cooperative reference.
func (e *Engine) runParallel(n int, body func(*TaskCtx)) error {
	tcs := make([]*TaskCtx, n)
	defer e.releaseTasks(tcs)
	p := newPhaser(e, tcs, n)
	for i := 0; i < n; i++ {
		tcs[i] = e.newTask(i, n, ExecParallel, false)
		tcs[i].ph = p
	}

	var wg sync.WaitGroup
	for _, tc := range tcs {
		wg.Add(1)
		go func(tc *TaskCtx) {
			defer func() {
				if r := recover(); r != nil {
					if _, isAbort := r.(abortSentinel); !isAbort {
						tc.panicked = r
						p.abort()
					}
				}
				p.taskDone()
				wg.Done()
			}()
			body(tc)
		}(tc)
	}
	wg.Wait()

	// Deterministic failure selection: the lowest-index failed task wins,
	// matching the cooperative scheduler's sweep order.
	for _, tc := range tcs {
		if tc.panicked != nil {
			return e.taskError(tc)
		}
	}
	return p.mergeErr
}
