package spmd

import (
	"sort"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/vec"
)

// Cycle attribution: every cycle the engine puts on the modeled clock is
// charged to one (pipe-loop phase, cost class) bucket, and the clock itself is
// *defined* as the canonical fold of those buckets — class index order outer,
// phases in sorted-name order inner — recomputed after every boundary charge
// (refoldCycles). Inverting the dependency this way is what makes the
// decomposition bit-exact under IEEE float addition: there is no separately
// accumulated total that a differently-grouped per-bucket sum would have to
// reproduce. obs.Attribution snapshots the buckets in the same fold order, so
// Attribution.Total() == Engine.TimeCycles() exactly, in every execution mode
// and on both kernel backends.
//
// All bucket-registry touches are single-threaded by construction: host-side
// MarkPhase runs between launches, live-mode task marks run on the cooperative
// scheduler (one task at a time), and deferred/parallel task marks are
// recorded in the task's phase log and replayed at the merge boundary in task
// order — the same order the live scheduler would have executed them.

// costVec is one per-class cycle accumulator block.
type costVec [obs.NumCostClasses]float64

// foldClasses folds a per-class block to a scalar in class index order — the
// canonical per-task fold used for SMT winner selection and trace spans.
func foldClasses(v *costVec) float64 {
	var s float64
	for k := 0; k < int(obs.NumCostClasses); k++ {
		s += v[k]
	}
	return s
}

// opCostClass maps a vector-op class to the cost class its issue cycles are
// charged to. The gather/scatter vs vload/vstore/packed split is what
// separates the fallback-CSR path from the dense-SELL path in the profile.
var opCostClass = [vec.NumOpClasses]obs.CostClass{
	vec.ClassALU:         obs.CostVALU,
	vec.ClassCmp:         obs.CostVALU,
	vec.ClassBlend:       obs.CostVALU,
	vec.ClassGather:      obs.CostGatherScatter,
	vec.ClassScatter:     obs.CostGatherScatter,
	vec.ClassVLoad:       obs.CostDenseStream,
	vec.ClassVStore:      obs.CostDenseStream,
	vec.ClassPacked:      obs.CostDenseStream,
	vec.ClassReduce:      obs.CostVALU,
	vec.ClassScan:        obs.CostVALU,
	vec.ClassConvert:     obs.CostVALU,
	vec.ClassScalar:      obs.CostScalar,
	vec.ClassScalarLoad:  obs.CostScalar,
	vec.ClassScalarStore: obs.CostScalar,
	vec.ClassAtomic:      obs.CostAtomic,
}

// accCostClass maps a memory-access kind to the cost class its exposed stall
// is charged to. AccPlain's stall table row is all zero (stores retire through
// the write buffer), so its mapping never receives a non-zero charge.
var accCostClass = [4]obs.CostClass{
	machine.AccPlain:  obs.CostMemLoad,
	machine.AccLoad:   obs.CostMemLoad,
	machine.AccGather: obs.CostGatherScatter,
	machine.AccStream: obs.CostDenseStream,
}

// attrInitPhase is the bucket that receives charges before the first MarkPhase
// (graph binding, the first launch of an unmarked pipeline).
const attrInitPhase = "(init)"

// attrTable is the engine's attribution bucket registry. Slots are dense and
// append-only within a run; order holds slot ids sorted by phase name — the
// canonical fold order, which is independent of registration order and
// therefore identical across execution modes and backends.
type attrTable struct {
	idx   map[string]int32
	names []string
	vals  []costVec
	order []int32
	cur   int32
}

func (t *attrTable) init() {
	t.idx = make(map[string]int32)
	t.register(attrInitPhase)
	t.cur = 0
}

// reset forgets all registrations, keeping slice capacity (ResetAll).
func (t *attrTable) reset() {
	for k := range t.idx {
		delete(t.idx, k)
	}
	t.names = t.names[:0]
	t.vals = t.vals[:0]
	t.order = t.order[:0]
	t.register(attrInitPhase)
	t.cur = 0
}

// zero clears every bucket, keeping registrations and the cursor (ResetTime).
func (t *attrTable) zero() {
	for i := range t.vals {
		t.vals[i] = costVec{}
	}
}

// register appends a new slot and inserts its id at the sorted position.
func (t *attrTable) register(name string) int32 {
	id := int32(len(t.names))
	t.idx[name] = id
	t.names = append(t.names, name)
	t.vals = append(t.vals, costVec{})
	pos := sort.Search(len(t.order), func(i int) bool {
		return t.names[t.order[i]] >= name
	})
	t.order = append(t.order, 0)
	copy(t.order[pos+1:], t.order[pos:])
	t.order[pos] = id
	return id
}

// attrMark moves the attribution cursor to the named phase, registering it on
// first sight. Steady state is one map hit — no allocation. Single-threaded
// only (see package comment above).
func (e *Engine) attrMark(name string) {
	t := &e.attr
	if id, ok := t.idx[name]; ok {
		t.cur = id
		return
	}
	t.cur = t.register(name)
}

// refoldCycles recomputes the modeled clock as the canonical fold of the
// attribution buckets: per class (index order), fold phases in sorted-name
// order, then fold the class totals. Called after every boundary charge; this
// IS the definition of Engine.TimeCycles().
func (e *Engine) refoldCycles() {
	t := &e.attr
	var total float64
	for k := 0; k < int(obs.NumCostClasses); k++ {
		var ct float64
		for _, id := range t.order {
			ct += t.vals[id][k]
		}
		total += ct
	}
	e.cycles = total
}

// chargeCycles adds c to the current phase's bucket for class cls and
// re-derives the clock. Every non-segment clock advance (launch, barrier,
// host work) funnels through here; segment costs charge their per-class parts
// directly in aggregateSegment.
func (e *Engine) chargeCycles(cls obs.CostClass, c float64) {
	e.attr.vals[e.attr.cur][cls] += c
	e.refoldCycles()
}

// Attribution snapshots the engine's cycle attribution. Phases appear in
// sorted-name order — the canonical fold order — with all-zero buckets
// dropped (exact zeros contribute nothing to any fold), so
// Attribution.Total() equals TimeCycles() bit-for-bit. Wasted is left zero;
// the recovery layer reports discarded cycles separately.
func (e *Engine) Attribution() obs.Attribution {
	t := &e.attr
	var a obs.Attribution
	for _, id := range t.order {
		if t.vals[id] == (costVec{}) {
			continue
		}
		a.Phases = append(a.Phases, obs.AttrPhase{Phase: t.names[id], Cycles: t.vals[id]})
	}
	return a
}
