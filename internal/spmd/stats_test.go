package spmd

import "testing"

func TestStatsString(t *testing.T) {
	cases := []struct {
		name string
		s    Stats
		want string
	}{
		{
			name: "zero",
			s:    Stats{},
			want: "instrs=0 vops=0 sops=0 atomics=0 pushes=0 launches=0 barriers=0 work=0 faults=0",
		},
		{
			name: "all fields",
			s: Stats{
				Instructions: 1234, VectorOps: 1000, ScalarOps: 200,
				Atomics: 34, AtomicPushes: 12, Launches: 3, Barriers: 7,
				WorkItems: 560, PageFaults: 2,
			},
			want: "instrs=1234 vops=1000 sops=200 atomics=34 pushes=12 launches=3 barriers=7 work=560 faults=2",
		},
		{
			name: "work and faults only",
			s:    Stats{WorkItems: 9, PageFaults: 1},
			want: "instrs=0 vops=0 sops=0 atomics=0 pushes=0 launches=0 barriers=0 work=9 faults=1",
		},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("%s:\n got %q\nwant %q", c.name, got, c.want)
		}
	}
}
