package spmd

import (
	"repro/internal/machine"
	"repro/internal/obs"
)

// Engine-side observability glue. Every event recorded here is timestamped on
// the modeled clock (converted to microseconds), so traces and metrics are
// bit-identical across execution modes and repeated runs: cycles only advance
// at launch and barrier boundaries, per-task compute/stall totals are
// mode-invariant, and all recording points are single-writer (host goroutine,
// cooperative scheduler, phaser boundary under its lock, or task 0 between
// barriers in outlined programs).

// iterSpan is an open pipe-loop iteration span.
type iterSpan struct {
	loop     string
	iter     int64
	startCyc float64
}

// iterBase is the counter snapshot behind the previous metrics sample;
// per-iteration rows report deltas against it.
type iterBase struct {
	stats Stats
	mem   machine.MemCounters
}

// usCycles converts a modeled cycle count to trace microseconds.
func (e *Engine) usCycles(c float64) float64 {
	return e.Machine.CyclesToNS(c) / 1e3
}

// traceLaunch emits the span of one finished launch on both clocks: modeled
// start/duration on the engine track, host wall time on the host-scheduler
// track. Named after the current kernel phase when one is marked.
func (e *Engine) traceLaunch(startCyc, hostStart float64, n int) {
	name := e.phaseName()
	if name == "" {
		name = "launch"
	}
	tr := e.Trace
	tr.CompleteArg(obs.ProcModeled, obs.TidEngine, name,
		e.usCycles(startCyc), e.usCycles(e.cycles-startCyc), "tasks", int64(n))
	tr.CompleteArg(obs.ProcHost, obs.TidHost, name,
		hostStart, tr.HostNow()-hostStart, "tasks", int64(n))
}

// chargeBarrier accounts one inter-segment barrier: counter, modeled cost,
// and a span on the engine track when tracing. Shared by the cooperative
// scheduler and the phaser so both modes emit identical events.
func (e *Engine) chargeBarrier(n int) {
	e.Stats.Barriers++
	c := e.Machine.BarrierCost(n)
	if tr := e.Trace; tr != nil {
		tr.Complete(obs.ProcModeled, obs.TidEngine, "barrier",
			e.usCycles(e.cycles), e.usCycles(c))
	}
	e.chargeCycles(obs.CostBarrier, c)
}

// IterTick records a pipe-loop iteration boundary: it closes the previous
// iteration's span on the pipe track, opens the next, samples the frontier
// counter, and appends a metrics row of per-iteration counter deltas. The
// codegen layer calls it from the host pipeline (or from task 0 of an
// outlined program, where only task 0 mutates shared loop state between
// barriers). No-op without an attached tracer or metrics ring.
func (e *Engine) IterTick(loop string, iter int64, frontier, capacity int) {
	if e.Trace == nil && e.Metrics == nil {
		return
	}
	e.iterTick(loop, iter, frontier, capacity)
}

func (e *Engine) iterTick(loop string, iter int64, frontier, capacity int) {
	if tr := e.Trace; tr != nil {
		if n := len(e.obsOpen); n > 0 && e.obsOpen[n-1].loop == loop {
			e.closeIterSpan()
		}
		tr.Counter(obs.ProcModeled, obs.TidPipe, "frontier",
			e.usCycles(e.cycles), int64(frontier))
		e.obsOpen = append(e.obsOpen, iterSpan{loop: loop, iter: iter, startCyc: e.cycles})
	}
	if m := e.Metrics; m != nil {
		cur := e.Stats
		mem := e.Mem.Counters()
		d := cur
		deltaSub(&d, &e.obsBase.stats)
		md := mem.Sub(e.obsBase.mem)
		row := obs.IterSample{
			Loop:         loop,
			Iter:         iter,
			Cycles:       e.cycles,
			Frontier:     int64(frontier),
			WorklistCap:  int64(capacity),
			Instructions: d.Instructions,
			VectorOps:    d.VectorOps,
			ScalarOps:    d.ScalarOps,
			Atomics:      d.Atomics,
			AtomicPushes: d.AtomicPushes,
			WorkItems:    d.WorkItems,
			LaneUtil:     d.LaneUtilization(e.Width()),
			MemAccesses:  md.Accesses,
			L1Hits:       md.Hits[machine.L1],
			L2Hits:       md.Hits[machine.L2],
			L3Hits:       md.Hits[machine.L3],
			MemMisses:    md.Hits[machine.Mem],
			PageFaults:   d.PageFaults,
		}
		if capacity > 0 {
			row.Occupancy = float64(frontier) / float64(capacity)
		}
		m.Append(row)
		e.obsBase = iterBase{stats: cur, mem: mem}
	}
}

// IterDone closes the last open iteration span of the named loop when the
// loop exits.
func (e *Engine) IterDone(loop string) {
	if e.Trace == nil {
		return
	}
	if n := len(e.obsOpen); n > 0 && e.obsOpen[n-1].loop == loop {
		e.closeIterSpan()
	}
}

func (e *Engine) closeIterSpan() {
	n := len(e.obsOpen) - 1
	sp := e.obsOpen[n]
	e.obsOpen = e.obsOpen[:n]
	e.Trace.CompleteArg(obs.ProcModeled, obs.TidPipe, sp.loop,
		e.usCycles(sp.startCyc), e.usCycles(e.cycles-sp.startCyc), "iter", sp.iter)
}

// NoteSwap records a worklist in/out swap as an instant event on the pipe
// track, annotated with the new frontier size. Called by worklist.Pair.Swap.
func (e *Engine) NoteSwap(frontier int) {
	if tr := e.Trace; tr != nil {
		tr.Instant(obs.ProcModeled, obs.TidPipe, "worklist-swap",
			e.usCycles(e.cycles), "frontier", int64(frontier))
	}
}

// NoteCheckpoint records a verified checkpoint as an instant event on the
// pipe track, annotated with the pipe iteration it covers.
func (e *Engine) NoteCheckpoint(iter int64) {
	if tr := e.Trace; tr != nil {
		tr.Instant(obs.ProcModeled, obs.TidPipe, "checkpoint",
			e.usCycles(e.cycles), "iter", iter)
	}
}

// NoteRollback records a rollback to the last verified checkpoint as an
// instant event on the pipe track, annotated with the modeled cycles the
// discarded execution wasted. Emitted after the engine state is restored, so
// the event lands at the checkpoint's own timestamp where the re-execution
// resumes.
func (e *Engine) NoteRollback(wasted float64) {
	if tr := e.Trace; tr != nil {
		tr.Instant(obs.ProcModeled, obs.TidPipe, "rollback",
			e.usCycles(e.cycles), "wasted_cycles", int64(wasted))
	}
}
