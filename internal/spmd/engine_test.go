package spmd

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/vec"
)

func newTestEngine(tasks int) *Engine {
	return New(machine.Intel8(), vec.TargetAVX512x16, tasks)
}

func TestLaunchRunsAllTasks(t *testing.T) {
	e := newTestEngine(8)
	seen := make([]bool, 8)
	e.Launch(8, func(tc *TaskCtx) {
		if tc.Count != 8 {
			t.Errorf("taskCount = %d", tc.Count)
		}
		if tc.Width != 16 {
			t.Errorf("programCount = %d", tc.Width)
		}
		seen[tc.Index] = true
	})
	for i, s := range seen {
		if !s {
			t.Errorf("task %d did not run", i)
		}
	}
	if e.Stats.Launches != 1 {
		t.Errorf("Launches = %d", e.Stats.Launches)
	}
}

func TestLaunchDefaultTaskCount(t *testing.T) {
	e := newTestEngine(0) // machine default: 16
	var n atomic.Int32
	e.Launch(0, func(tc *TaskCtx) { n.Add(1) })
	if n.Load() != 16 {
		t.Errorf("default tasks = %d, want 16", n.Load())
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	e := newTestEngine(4)
	phase := make([]int, 4)
	e.Launch(4, func(tc *TaskCtx) {
		phase[tc.Index] = 1
		tc.Barrier()
		// After the barrier every task must observe every phase-1 write.
		for i, p := range phase {
			if p != 1 {
				t.Errorf("task %d saw phase[%d]=%d before barrier release", tc.Index, i, p)
			}
		}
		tc.Barrier()
		phase[tc.Index] = 2
	})
	if e.Stats.Barriers != 2 {
		t.Errorf("Barriers = %d, want 2", e.Stats.Barriers)
	}
}

func TestUnevenBarrierCounts(t *testing.T) {
	// Tasks that finish early must not deadlock tasks still iterating.
	e := newTestEngine(4)
	total := 0
	e.Launch(4, func(tc *TaskCtx) {
		for i := 0; i <= tc.Index; i++ {
			tc.Barrier()
		}
		total++
	})
	if total != 4 {
		t.Errorf("only %d tasks completed", total)
	}
}

func TestDeterministicTimeAndStats(t *testing.T) {
	run := func() (float64, Stats) {
		e := newTestEngine(8)
		a := e.AllocI("data", 1024)
		e.Launch(8, func(tc *TaskCtx) {
			idx := vec.Iota()
			m := vec.FullMask(tc.Width)
			for it := 0; it < 10; it++ {
				v := tc.GatherI(a, idx, m, vec.Vec{}, true)
				v = vec.Bin(vec.OpAdd, v, vec.Splat(1), m, tc.Width)
				tc.Op(vec.ClassALU, false)
				tc.ScatterI(a, idx, v, m)
				tc.Barrier()
			}
		})
		return e.TimeNS(), e.Stats
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Errorf("modeled time not deterministic: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Errorf("stats not deterministic:\n%v\n%v", &s1, &s2)
	}
}

func TestLaunchEmptyCost(t *testing.T) {
	e := newTestEngine(16)
	e.TaskSys = Pthread
	e.LaunchEmpty(16)
	wantNS := Pthread.LaunchCostNS(16, true)
	if got := e.TimeNS(); got != wantNS {
		t.Errorf("empty launch time = %v ns, want %v", got, wantNS)
	}
}

func TestTaskSystemOrdering(t *testing.T) {
	// Table II: pthread slowest, cilk fastest for empty launches.
	n := 16
	if !(Cilk.LaunchCostNS(n, true) < OpenMP.LaunchCostNS(n, true)) {
		t.Error("cilk should beat openmp on empty launches")
	}
	if !(OpenMP.LaunchCostNS(n, true) < Pthread.LaunchCostNS(n, true)) {
		t.Error("openmp should beat pthread on empty launches")
	}
	// Table III: with real work, openmp has the lowest total overhead.
	for _, ts := range TaskSystems() {
		if ts.Name == "openmp" {
			continue
		}
		if OpenMP.LaunchCostNS(n, false) >= ts.LaunchCostNS(n, false) {
			t.Errorf("openmp real-launch cost should beat %s", ts.Name)
		}
	}
}

func TestTaskSystemByName(t *testing.T) {
	for _, name := range []string{"pthread", "pthread_fs", "cilk", "openmp", "tbb"} {
		ts, err := TaskSystemByName(name)
		if err != nil || ts.Name != name {
			t.Errorf("TaskSystemByName(%q) = %v, %v", name, ts, err)
		}
	}
	if _, err := TaskSystemByName("fibers"); err == nil {
		t.Error("unknown task system accepted")
	}
}

func TestMultiTaskingSpeedsUpComputeBound(t *testing.T) {
	// The same total compute split over 8 tasks on 8 cores must be ~8x
	// faster than on 1 task.
	timeFor := func(tasks int) float64 {
		e := newTestEngine(tasks)
		e.NoSMT = true
		perTask := 8000 / tasks
		e.Launch(tasks, func(tc *TaskCtx) {
			tc.OpN(vec.ClassALU, false, perTask)
		})
		return e.Machine.CyclesToNS(e.TimeCycles()) - Pthread.LaunchCostNS(tasks, false)
	}
	t1 := timeFor(1)
	t8 := timeFor(8)
	if ratio := t1 / t8; ratio < 7.5 || ratio > 8.5 {
		t.Errorf("8-task speedup = %v, want ~8", ratio)
	}
}

func TestSMTSharesIssueBandwidth(t *testing.T) {
	// 16 compute-bound tasks on 8 cores (2-way SMT) should take about as
	// long as 8 tasks doing the same per-task work: no SMT benefit.
	perTask := 4000
	run := func(tasks int) float64 {
		e := newTestEngine(tasks)
		e.Launch(tasks, func(tc *TaskCtx) { tc.OpN(vec.ClassALU, false, perTask) })
		return e.TimeCycles() - e.Machine.NSToCycles(Pthread.LaunchCostNS(tasks, false))
	}
	t8 := run(8)
	t16 := run(16)
	// 16 tasks do twice the total work on the same 8 cores.
	if ratio := t16 / t8; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("compute-bound SMT ratio = %v, want ~2 (shared issue)", ratio)
	}
}

func TestContendedAtomicsSerialize(t *testing.T) {
	// A launch where every task hammers the shared counter must be bounded
	// below by total_atomics * AtomicCycles regardless of task count.
	e := newTestEngine(8)
	e.NoSMT = true
	ctr := e.AllocI("ctr", 1)
	const perTask = 500
	e.Launch(8, func(tc *TaskCtx) {
		for i := 0; i < perTask; i++ {
			tc.AtomicAddScalar(ctr, 0, 1, true)
		}
	})
	if ctr.I[0] != 8*perTask {
		t.Fatalf("counter = %d", ctr.I[0])
	}
	if e.Stats.AtomicPushes != 8*perTask {
		t.Errorf("AtomicPushes = %d", e.Stats.AtomicPushes)
	}
	floor := float64(8*perTask) * e.Machine.AtomicCycles
	if e.TimeCycles() < floor {
		t.Errorf("time %v below serialization floor %v", e.TimeCycles(), floor)
	}
}

func TestUncontendedAtomicsScale(t *testing.T) {
	// Per-lane atomics on distinct addresses must not impose the global
	// serialization floor: 8 tasks should be much faster than the floor.
	e := newTestEngine(8)
	e.NoSMT = true
	a := e.AllocI("deg", 8*16)
	const iters = 200
	e.Launch(8, func(tc *TaskCtx) {
		base := int32(tc.Index * 16)
		idx := vec.Bin(vec.OpAdd, vec.Iota(), vec.Splat(base), vec.FullMask(16), 16)
		for i := 0; i < iters; i++ {
			tc.AtomicAddLanes(a, idx, vec.Splat(1), vec.FullMask(16), false)
		}
	})
	total := float64(8*iters*16) * e.Machine.AtomicCycles
	if e.TimeCycles() > total/4 {
		t.Errorf("distributed atomics too slow: %v vs serial-total %v", e.TimeCycles(), total)
	}
}

func TestPanicBecomesTypedError(t *testing.T) {
	e := newTestEngine(4)
	err := e.Launch(4, func(tc *TaskCtx) {
		tc.Barrier()
		if tc.Index == 2 {
			panic("boom")
		}
		tc.Barrier()
	})
	if err == nil {
		t.Fatal("expected panicking launch to return an error")
	}
	if !errors.Is(err, fault.ErrKernelPanic) {
		t.Errorf("error %v does not match ErrKernelPanic", err)
	}
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a PanicError", err)
	}
	if pe.Task != 2 || pe.Value != "boom" {
		t.Errorf("PanicError detail = task %d value %v", pe.Task, pe.Value)
	}
}

func TestFailReturnsTypedError(t *testing.T) {
	e := newTestEngine(4)
	e.MarkPhase("bfs-test")
	e.MarkIteration(7)
	boom := &fault.BoundsError{Op: "gather", Array: "lvl", Lane: 3, Index: 99, Len: 10}
	err := e.Launch(4, func(tc *TaskCtx) {
		tc.Barrier()
		if tc.Index == 1 {
			tc.Fail(boom)
		}
		tc.Barrier()
	})
	if !errors.Is(err, fault.ErrOutOfBounds) {
		t.Fatalf("error %v does not match ErrOutOfBounds", err)
	}
	var be *fault.BoundsError
	if !errors.As(err, &be) || be.Lane != 3 {
		t.Error("bounds detail lost through Launch")
	}
	for _, want := range []string{"task 1", "bfs-test", "iteration 7"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing context %q", err, want)
		}
	}
}

func TestGatherOOBFailsLaunch(t *testing.T) {
	e := newTestEngine(1)
	a := e.AllocI("lvl", 8)
	err := e.Launch(1, func(tc *TaskCtx) {
		tc.GatherI(a, vec.Splat(42), vec.FullMask(4), vec.Vec{}, false)
	})
	var be *fault.BoundsError
	if !errors.As(err, &be) {
		t.Fatalf("gather OOB returned %v, want BoundsError", err)
	}
	if be.Array != "lvl" || be.Index != 42 || be.Len != 8 {
		t.Errorf("detail = %+v", be)
	}
}

func TestInjectedGatherFault(t *testing.T) {
	run := func() (error, string) {
		e := newTestEngine(2)
		e.Inject = fault.NewInjector(11, fault.Config{GatherIndex: 0.05})
		a := e.AllocI("dist", 64)
		err := e.Launch(2, func(tc *TaskCtx) {
			for round := 0; round < 40; round++ {
				tc.GatherI(a, vec.Iota(), vec.FullMask(16), vec.Vec{}, true)
			}
		})
		return err, e.Inject.TraceString()
	}
	err1, trace1 := run()
	err2, trace2 := run()
	if !errors.Is(err1, fault.ErrOutOfBounds) {
		t.Fatalf("injected fault surfaced as %v", err1)
	}
	if err2 == nil || err1.Error() != err2.Error() || trace1 != trace2 {
		t.Error("same seed did not reproduce the same failure trace")
	}
	if trace1 == "" {
		t.Error("injector left no trace")
	}
}

func TestBudgetStopsLaunch(t *testing.T) {
	e := newTestEngine(2)
	e.Budget = fault.Budget{MaxCycles: 1}
	e.AddCycles(10)
	err := e.Launch(2, func(tc *TaskCtx) { t.Error("body ran past budget") })
	if !errors.Is(err, fault.ErrBudgetExceeded) {
		t.Errorf("over-budget launch returned %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e2 := newTestEngine(2)
	e2.Budget = fault.Budget{Ctx: ctx}
	if err := e2.Launch(2, func(tc *TaskCtx) {}); !errors.Is(err, fault.ErrBudgetExceeded) {
		t.Errorf("cancelled-context launch returned %v", err)
	}
}

func TestResetTime(t *testing.T) {
	e := newTestEngine(2)
	e.Launch(2, func(tc *TaskCtx) { tc.OpN(vec.ClassALU, false, 100) })
	if e.TimeNS() == 0 {
		t.Fatal("no time accumulated")
	}
	e.ResetTime()
	if e.TimeNS() != 0 || e.Stats.Instructions != 0 {
		t.Error("ResetTime did not clear state")
	}
}

func TestAllocAndBind(t *testing.T) {
	e := newTestEngine(1)
	a := e.AllocI("a", 10)
	b := e.AllocF("b", 10)
	c := e.BindI("c", []int32{1, 2, 3})
	if a.Len() != 10 || b.Len() != 10 || c.Len() != 3 {
		t.Error("lengths wrong")
	}
	if a.Base == b.Base || b.Base == c.Base {
		t.Error("arrays share base addresses")
	}
	if c.Addr(1)-c.Addr(0) != 4 {
		t.Error("element addressing wrong")
	}
	a.FillI(7)
	if a.I[9] != 7 {
		t.Error("FillI")
	}
	b.FillF(1.5)
	if b.F[0] != 1.5 {
		t.Error("FillF")
	}
	if !strings.Contains(a.String(), "a[10]i32") {
		t.Errorf("Array.String = %q", a.String())
	}
}

func TestHWThreadPinning(t *testing.T) {
	e := newTestEngine(16)
	// First 8 tasks on distinct cores, next 8 reuse them (second SMT way).
	for i := 0; i < 8; i++ {
		if e.coreOf(e.hwThreadOf(i)) != i {
			t.Errorf("task %d core = %d", i, e.coreOf(e.hwThreadOf(i)))
		}
		if e.coreOf(e.hwThreadOf(i+8)) != i {
			t.Errorf("task %d core = %d", i+8, e.coreOf(e.hwThreadOf(i+8)))
		}
	}
	e.NoSMT = true
	if e.hwThreadOf(8) != 0 {
		t.Error("NoSMT should wrap tasks onto cores")
	}
}

func TestGPUTransferAccounting(t *testing.T) {
	e := New(machine.QuadroP5000(), vec.TargetGPU32, 64)
	e.AddTransferBytes(12 << 30)
	if e.TimeNS() < 0.9e9 {
		t.Errorf("transfer time = %v", e.TimeNS())
	}
	cpu := newTestEngine(1)
	cpu.AddTransferBytes(12 << 30)
	if cpu.TimeNS() != 0 {
		t.Error("CPU transfer must be free")
	}
}

func TestPinStride(t *testing.T) {
	e := newTestEngine(4)
	e.NoSMT = true // 8 cores -> 8 logical CPUs in this mode
	e.PinStride = 2
	// The artifact's example: stride 2 interleaves across the CPU list.
	want := []int{0, 2, 4, 6, 1, 3, 5, 7}
	for i, w := range want {
		if got := e.hwThreadOf(i); got != w {
			t.Errorf("task %d -> cpu %d, want %d", i, got, w)
		}
	}
	e.PinStride = 1
	if e.hwThreadOf(3) != 3 {
		t.Error("stride 1 must be identity placement")
	}
}
