package spmd

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/vec"
)

// TaskCtx is the per-task execution context handed to launch bodies. It
// exposes the ISPC builtins (taskIndex/taskCount/programCount), cost-counted
// memory and atomic primitives, and the in-kernel barrier.
//
// The compiled kernels perform all vector computation through internal/vec
// directly and report instruction costs through Op/InnerOp; memory and
// atomics go through the methods here so that cache, paging and contention
// modeling see every access.
//
// In live mode (ExecLive) every primitive mutates shared engine state
// immediately. In the deferred modes the task accounts into a private stats
// shard (st points at shard), records memory accesses into a private trace,
// and routes reads/writes through its deferredCtx; the engine merges
// everything at barrier and launch boundaries in task order.
type TaskCtx struct {
	E     *Engine
	Index int // taskIndex
	Count int // taskCount
	Width int // programCount

	hw, core int

	// st is where instruction/atomic statistics accumulate: &E.Stats in
	// live mode, &shard in the deferred modes.
	st    *Stats
	shard Stats

	// def holds the task's private deferred-effect state; nil in live mode.
	def *deferredCtx
	// serialDef marks a cooperative deferred task (ExecDeferred): tasks run
	// one at a time in task order, so stage-free segments may probe the
	// cache immediately (MarkStageFree) without racing or reordering.
	serialDef bool
	// ph is the barrier phaser of a parallel launch; nil otherwise.
	ph *phaser

	// comp/stl accumulate this task's issued-instruction and exposed-stall
	// cycles since the last barrier, broken down by cost class (attr.go).
	// The scalars the SMT aggregation needs are derived by folding the
	// blocks in class index order (foldClasses) at the segment boundary, so
	// per-charge cost stays one indexed add.
	comp costVec
	stl  costVec

	resume, yield chan struct{}
	done          bool
	abort         bool
	panicked      any
}

type abortSentinel struct{}

// taskFailure wraps a typed error thrown by TaskCtx.Fail; Engine.Launch
// recovers it and returns the error with task/kernel/iteration context.
type taskFailure struct{ err error }

// Fail aborts the current task with a typed error. The enclosing Launch
// drains sibling tasks and returns the error wrapped with task context.
// Fail does not return.
func (tc *TaskCtx) Fail(err error) {
	panic(taskFailure{err})
}

// failBounds attaches the array name to a bounds violation and unwinds.
func (tc *TaskCtx) failBounds(err error, a *Array) {
	var be *fault.BoundsError
	if errors.As(err, &be) && be.Array == "" {
		be.Array = a.Name
	}
	tc.Fail(err)
}

// corruptIdx routes active-lane indices through the engine's fault injector
// (nil-safe no-op). kind is "gather" or "scatter".
func (tc *TaskCtx) corruptIdx(kind string, a *Array, idx vec.Vec, m vec.Mask) vec.Vec {
	in := tc.E.Inject
	if in == nil {
		return idx
	}
	n := a.Len()
	for i := 0; i < tc.Width; i++ {
		if m.Bit(i) {
			if bad, ok := in.CorruptIndex(kind, a.Name, i, idx[i], n); ok {
				idx[i] = bad
			}
		}
	}
	return idx
}

// checkScalar validates one uniform element index, unwinding the task with a
// typed bounds error on violation.
func (tc *TaskCtx) checkScalar(op string, a *Array, idx int32) {
	if idx < 0 || int(idx) >= a.Len() {
		tc.Fail(&fault.BoundsError{Op: op, Array: a.Name, Lane: -1, Index: idx, Len: a.Len()})
	}
}

// checkLane validates one lane's element index inside a hand-rolled atomic
// loop, unwinding the task on violation.
func (tc *TaskCtx) checkLane(op string, a *Array, lane int, idx int32) {
	if idx < 0 || int(idx) >= a.Len() {
		tc.Fail(&fault.BoundsError{Op: op, Array: a.Name, Lane: lane, Index: idx, Len: a.Len()})
	}
}

// MarkPhase records entry into a named profiling phase from inside a task
// body (compiled kernels call it on kernel entry). The name is always stored
// for failure context. With profiling enabled, live tasks attribute through
// the engine-level snapshot profiler directly; deferred and parallel tasks
// append to their private phase log, which the profiler folds into the same
// per-phase sums at the next merge boundary.
func (tc *TaskCtx) MarkPhase(name string) {
	e := tc.E
	if p, ok := e.phaseNames.Load(name); ok {
		e.phase.Store(p.(*string))
	} else {
		n := name
		e.phaseNames.Store(name, &n)
		e.phase.Store(&n)
	}
	if tc.def == nil {
		// Live tasks run one at a time on the cooperative scheduler, so the
		// attribution cursor moves in global execution order.
		e.attrMark(name)
		if p := e.prof; p != nil {
			p.flush(e)
			p.enter(name)
		}
		return
	}
	// Deferred/parallel tasks cannot touch shared state mid-segment; the log
	// replays through attrMark (and the profiler, when enabled) at the merge
	// boundary in task order — the order live execution would have used.
	tc.def.phLog = append(tc.def.phLog, phaseEntry{name: name, base: tc.shard})
}

// Barrier synchronizes all live tasks of the current launch. Calling it from
// a LaunchNoBarrier body is a kernel bug and fails the task.
func (tc *TaskCtx) Barrier() {
	if tc.ph != nil {
		tc.ph.barrier()
		return
	}
	if tc.resume == nil {
		tc.Fail(fmt.Errorf("TaskCtx.Barrier inside a barrier-free launch: %w", fault.ErrKernelPanic))
	}
	tc.yield <- struct{}{}
	<-tc.resume
	if tc.abort {
		panic(abortSentinel{})
	}
}

// Aborted reports whether the scheduler asked this task to unwind.
func (tc *TaskCtx) Aborted() bool { return tc.abort }

// --- Instruction accounting ---

// Op records one logical vector operation of the given class, lowering it to
// the target's dynamic instruction count (via the engine's lowering cache;
// the charged cycles are the exact values the uncached switch produced).
func (tc *TaskCtx) Op(class vec.OpClass, masked bool) {
	c := &tc.E.opCost[class][b2u(masked)]
	tc.st.Instructions += c.instrs
	tc.st.ByClass[class] += c.instrs
	tc.st.VectorOps++
	tc.comp[opCostClass[class]] += c.cycles
}

// OpN records n logical vector operations of the given class.
func (tc *TaskCtx) OpN(class vec.OpClass, masked bool, n int) {
	if n <= 0 {
		return
	}
	in := tc.E.opCost[class][b2u(masked)].instrs * int64(n)
	tc.st.Instructions += in
	tc.st.ByClass[class] += in
	tc.st.VectorOps += int64(n)
	tc.comp[opCostClass[class]] += float64(in) / tc.E.Machine.IPC
}

func b2u(b bool) int {
	if b {
		return 1
	}
	return 0
}

// InnerOp records one vector operation inside a kernel's inner (edge) loop
// together with its active lane count, feeding the Table IV lane-utilization
// measurement.
func (tc *TaskCtx) InnerOp(class vec.OpClass, masked bool, active int) {
	tc.Op(class, masked)
	tc.st.InnerVectorOps++
	tc.st.InnerActiveLanes += int64(active)
}

// InnerTally records one inner-loop vector op's lane occupancy without
// charging instructions — the issuing site already charged the op itself
// (e.g. a dense SELL column load accounted as a ClassVLoad). Keeps the lane
// utilization metric honest when a load replaces a per-lane gather.
func (tc *TaskCtx) InnerTally(active int) {
	tc.st.InnerVectorOps++
	tc.st.InnerActiveLanes += int64(active)
}

// NoteSellColumn records one slice column executed through the SELL dense
// neighborhood path, with its count of live (non-padding) lanes.
func (tc *TaskCtx) NoteSellColumn(active int) {
	tc.st.SellColumns++
	tc.st.SellActiveLanes += int64(active)
}

// ScalarOps records n uniform scalar ALU instructions.
func (tc *TaskCtx) ScalarOps(n int) {
	if n <= 0 {
		return
	}
	tc.st.Instructions += int64(n)
	tc.st.ByClass[vec.ClassScalar] += int64(n)
	tc.st.ScalarOps += int64(n)
	tc.comp[obs.CostScalar] += float64(n) / tc.E.Machine.IPC
}

// Work records processed worklist items (a useful-work proxy).
func (tc *TaskCtx) Work(n int) { tc.st.WorkItems += int64(n) }

func (tc *TaskCtx) addStall(cls obs.CostClass, cycles float64) {
	tc.stl[cls] += cycles * tc.E.StallScale
}

// touchPage runs one address through the pager. It executes only while the
// engine is single-threaded: at live execution or at boundary replay.
func (tc *TaskCtx) touchPage(addr int64) {
	if tc.E.Pager == nil {
		return
	}
	ns, fault := tc.E.Pager.Touch(addr)
	if fault {
		tc.st.PageFaults++
	}
	if ns > 0 {
		tc.E.faultNS += ns
	}
}

// --- Memory operations ---

// gatherKind returns the access kind of one gather lane: a hardware-gather
// lane on targets with native gather, a scalar load otherwise.
func (tc *TaskCtx) gatherKind() machine.AccessKind {
	if tc.E.Target.HasNativeGather() {
		return machine.AccGather
	}
	return machine.AccLoad // software gather: per-lane scalar loads
}

// maskedAccess is the shared bounds-check + cost-accounting loop behind
// every gather/scatter flavor: each active lane of idx is validated against
// a and its access recorded with the given kind. Written once so the
// per-lane hot path stays identical across GatherI/GatherF/ScatterI/
// ScatterF.
func (tc *TaskCtx) maskedAccess(op string, a *Array, idx vec.Vec, m vec.Mask, kind machine.AccessKind) {
	for i := 0; i < tc.Width; i++ {
		if m.Bit(i) {
			tc.checkLane(op, a, i, idx[i])
			tc.noteAccess(a.Addr(idx[i]), kind)
		}
	}
}

// GatherI gathers a.I[idx[i]] for active lanes with full cost accounting.
// inner marks inner-loop operations for utilization measurement.
func (tc *TaskCtx) GatherI(a *Array, idx vec.Vec, m vec.Mask, old vec.Vec, inner bool) vec.Vec {
	idx = tc.corruptIdx("gather", a, idx, m)
	if inner {
		tc.InnerOp(vec.ClassGather, true, m.PopCount())
	} else {
		tc.Op(vec.ClassGather, true)
	}
	tc.maskedAccess("gather", a, idx, m, tc.gatherKind())
	if d := tc.def; d != nil {
		out := old
		for i := 0; i < tc.Width; i++ {
			if m.Bit(i) {
				out[i] = d.loadI(a, idx[i])
			}
		}
		return out
	}
	return vec.Gather(a.I, idx, m, tc.Width, old)
}

// GatherF is GatherI for float arrays.
func (tc *TaskCtx) GatherF(a *Array, idx vec.Vec, m vec.Mask, old vec.FVec, inner bool) vec.FVec {
	idx = tc.corruptIdx("gather", a, idx, m)
	if inner {
		tc.InnerOp(vec.ClassGather, true, m.PopCount())
	} else {
		tc.Op(vec.ClassGather, true)
	}
	tc.maskedAccess("gather", a, idx, m, tc.gatherKind())
	if d := tc.def; d != nil {
		out := old
		for i := 0; i < tc.Width; i++ {
			if m.Bit(i) {
				out[i] = d.loadF(a, idx[i])
			}
		}
		return out
	}
	return vec.GatherF(a.F, idx, m, tc.Width, old)
}

// ScatterI scatters val to a.I[idx[i]] for active lanes. Stores retire
// through the write buffer; no exposed stall is charged (AccPlain), matching
// the scalar-store treatment.
func (tc *TaskCtx) ScatterI(a *Array, idx, val vec.Vec, m vec.Mask) {
	idx = tc.corruptIdx("scatter", a, idx, m)
	tc.Op(vec.ClassScatter, true)
	tc.maskedAccess("scatter", a, idx, m, machine.AccPlain)
	if d := tc.def; d != nil {
		for i := 0; i < tc.Width; i++ {
			if m.Bit(i) {
				d.storeI(a, idx[i], val[i])
			}
		}
		return
	}
	vec.Scatter(a.I, idx, val, m, tc.Width)
}

// ScatterF is ScatterI for float arrays.
func (tc *TaskCtx) ScatterF(a *Array, idx vec.Vec, val vec.FVec, m vec.Mask) {
	idx = tc.corruptIdx("scatter", a, idx, m)
	tc.Op(vec.ClassScatter, true)
	tc.maskedAccess("scatter", a, idx, m, machine.AccPlain)
	if d := tc.def; d != nil {
		for i := 0; i < tc.Width; i++ {
			if m.Bit(i) {
				d.storeF(a, idx[i], val[i])
			}
		}
		return
	}
	vec.ScatterF(a.F, idx, val, m, tc.Width)
}

// LoadVecI performs a unit-stride vector load from a.I[start:].
func (tc *TaskCtx) LoadVecI(a *Array, start int32, m vec.Mask, old vec.Vec) vec.Vec {
	tc.Op(vec.ClassVLoad, m != vec.FullMask(tc.Width))
	for i := 0; i < tc.Width; i++ {
		if m.Bit(i) {
			tc.checkLane("vload", a, i, start+int32(i))
			// The leading lane pays the full load latency; continuation
			// lanes stall only when their line is not already in L1.
			kind := machine.AccStream
			if i == 0 {
				kind = machine.AccLoad
			}
			tc.noteAccess(a.Addr(start+int32(i)), kind)
		}
	}
	if d := tc.def; d != nil {
		out := old
		for i := 0; i < tc.Width; i++ {
			if m.Bit(i) {
				out[i] = d.loadI(a, start+int32(i))
			}
		}
		return out
	}
	return vec.LoadConsecutive(a.I, start, m, tc.Width, old)
}

// StoreVecI performs a unit-stride vector store to a.I[start:].
func (tc *TaskCtx) StoreVecI(a *Array, start int32, val vec.Vec, m vec.Mask) {
	tc.Op(vec.ClassVStore, m != vec.FullMask(tc.Width))
	for i := 0; i < tc.Width; i++ {
		if m.Bit(i) {
			tc.checkLane("vstore", a, i, start+int32(i))
			tc.noteAccess(a.Addr(start+int32(i)), machine.AccPlain)
		}
	}
	if d := tc.def; d != nil {
		for i := 0; i < tc.Width; i++ {
			if m.Bit(i) {
				d.storeI(a, start+int32(i), val[i])
			}
		}
		return
	}
	vec.StoreConsecutive(a.I, start, val, m, tc.Width)
}

// PackedStore packs active lanes of val to a.I[start:] and returns the count
// (ISPC packed_store_active).
func (tc *TaskCtx) PackedStore(a *Array, start int32, val vec.Vec, m vec.Mask) int {
	tc.Op(vec.ClassPacked, true)
	n := m.PopCount()
	for i := 0; i < n; i++ {
		tc.noteAccess(a.Addr(start+int32(i)), machine.AccPlain)
	}
	if d := tc.def; d != nil {
		k := start
		for i := 0; i < tc.Width; i++ {
			if m.Bit(i) {
				tc.checkLane("packed-store", a, i, k)
				d.storeI(a, k, val[i])
				k++
			}
		}
		return int(k - start)
	}
	out, err := vec.PackedStoreActiveChecked(a.I, start, val, m, tc.Width)
	if err != nil {
		tc.failBounds(err, a)
	}
	return out
}

// ScalarLoadI loads a.I[idx] as a uniform value.
func (tc *TaskCtx) ScalarLoadI(a *Array, idx int32) int32 {
	tc.checkScalar("scalar-load", a, idx)
	tc.st.Instructions++
	tc.st.ByClass[vec.ClassScalarLoad]++
	tc.st.ScalarOps++
	tc.comp[obs.CostScalar] += tc.E.invIPC
	tc.noteAccess(a.Addr(idx), machine.AccLoad)
	if d := tc.def; d != nil {
		return d.loadI(a, idx)
	}
	return a.I[idx]
}

// ScalarStoreI stores a uniform value to a.I[idx].
func (tc *TaskCtx) ScalarStoreI(a *Array, idx int32, v int32) {
	tc.checkScalar("scalar-store", a, idx)
	tc.st.Instructions++
	tc.st.ByClass[vec.ClassScalarStore]++
	tc.st.ScalarOps++
	tc.comp[obs.CostScalar] += tc.E.invIPC
	tc.noteAccess(a.Addr(idx), machine.AccPlain)
	if d := tc.def; d != nil {
		d.storeI(a, idx, v)
		return
	}
	a.I[idx] = v
}

// ScalarLoadF loads a.F[idx] as a uniform float.
func (tc *TaskCtx) ScalarLoadF(a *Array, idx int32) float32 {
	tc.checkScalar("scalar-load", a, idx)
	tc.st.Instructions++
	tc.st.ByClass[vec.ClassScalarLoad]++
	tc.st.ScalarOps++
	tc.comp[obs.CostScalar] += tc.E.invIPC
	tc.noteAccess(a.Addr(idx), machine.AccLoad)
	if d := tc.def; d != nil {
		return d.loadF(a, idx)
	}
	return a.F[idx]
}

// ScalarStoreF stores a uniform float to a.F[idx].
func (tc *TaskCtx) ScalarStoreF(a *Array, idx int32, v float32) {
	tc.checkScalar("scalar-store", a, idx)
	tc.st.Instructions++
	tc.st.ByClass[vec.ClassScalarStore]++
	tc.st.ScalarOps++
	tc.comp[obs.CostScalar] += tc.E.invIPC
	tc.noteAccess(a.Addr(idx), machine.AccPlain)
	if d := tc.def; d != nil {
		d.storeF(a, idx, v)
		return
	}
	a.F[idx] = v
}

// --- Atomic operations ---

// countAtomics records n hardware atomics. contended marks atomics that hit
// a shared location (worklist tail index): those serialize across all tasks
// and impose a segment-wide floor on progress. push marks worklist pushes
// for the Table V counter.
func (tc *TaskCtx) countAtomics(n int, contended, push bool) {
	if n <= 0 {
		return
	}
	tc.st.Atomics += int64(n)
	tc.st.Instructions += int64(n)
	tc.st.ByClass[vec.ClassAtomic] += int64(n)
	cls := obs.CostAtomic
	if push {
		tc.st.AtomicPushes += int64(n)
		cls = obs.CostWorklist
	}
	tc.addStall(cls, tc.E.Machine.AtomicCycles*float64(n))
	if contended {
		if d := tc.def; d != nil {
			d.serialAtomics += tc.E.Machine.SerialAtomicCost() * float64(n)
		} else {
			tc.E.segSerialAtomics += tc.E.Machine.SerialAtomicCost() * float64(n)
		}
	}
}

// AtomicAddScalar atomically adds delta to a.I[idx] and returns the old
// value (a lock xadd on a shared scalar — the worklist-reservation pattern).
// Deferred tasks see their own accumulated view; the deltas merge exactly.
func (tc *TaskCtx) AtomicAddScalar(a *Array, idx int32, delta int32, push bool) int32 {
	tc.checkScalar("atomic-add", a, idx)
	tc.noteAccess(a.Addr(idx), machine.AccPlain)
	tc.countAtomics(1, true, push)
	if d := tc.def; d != nil {
		return d.addI(a, idx, delta)
	}
	old := a.I[idx]
	a.I[idx] = old + delta
	return old
}

// AtomicUpdateScalar atomically overwrites a.I[idx] (a CAS/atomic-min on a
// per-node location: uncontended, no global serialization floor) and
// returns the old value.
func (tc *TaskCtx) AtomicUpdateScalar(a *Array, idx int32, newVal int32) int32 {
	tc.checkScalar("atomic-update", a, idx)
	tc.noteAccess(a.Addr(idx), machine.AccPlain)
	tc.countAtomics(1, false, false)
	if d := tc.def; d != nil {
		old := d.loadI(a, idx)
		d.storeI(a, idx, newVal)
		return old
	}
	old := a.I[idx]
	a.I[idx] = newVal
	return old
}

// AtomicAddLanes performs per-lane atomic adds: a.I[idx[i]] += val[i] for
// active lanes (the unoptimized vector-to-vector atomic class, lowered to a
// hardware atomic per active lane).
func (tc *TaskCtx) AtomicAddLanes(a *Array, idx, val vec.Vec, m vec.Mask, push bool) {
	idx = tc.corruptIdx("scatter", a, idx, m)
	n := m.PopCount()
	d := tc.def
	for i := 0; i < tc.Width; i++ {
		if m.Bit(i) {
			tc.checkLane("atomic-add", a, i, idx[i])
			tc.noteAccess(a.Addr(idx[i]), machine.AccPlain)
			if d != nil {
				d.addI(a, idx[i], val[i])
			} else {
				a.I[idx[i]] += val[i]
			}
		}
	}
	tc.countAtomics(n, false, push)
}

// AtomicAddLanesContended is AtomicAddLanes against a shared scalar location
// (all lanes target the same address): the unoptimized worklist push pattern.
func (tc *TaskCtx) AtomicAddLanesContended(a *Array, idx int32, m vec.Mask, push bool) vec.Vec {
	tc.checkScalar("atomic-add", a, idx)
	n := m.PopCount()
	d := tc.def
	var out vec.Vec
	for i := 0; i < tc.Width; i++ {
		if m.Bit(i) {
			tc.noteAccess(a.Addr(idx), machine.AccPlain)
			if d != nil {
				out[i] = d.addI(a, idx, 1)
			} else {
				out[i] = a.I[idx]
				a.I[idx]++
			}
		}
	}
	tc.countAtomics(n, true, push)
	return out
}

// AtomicAddFLanes performs per-lane atomic float adds on distinct locations
// (lowered to compare-exchange loops on hardware, as ISPC does for float
// atomics — the pattern that makes PageRank atomic-heavy). Deferred tasks
// log deltas that merge in task order — the same accumulation order as the
// cooperative schedule, so float sums are bit-identical.
func (tc *TaskCtx) AtomicAddFLanes(a *Array, idx vec.Vec, val vec.FVec, m vec.Mask) {
	idx = tc.corruptIdx("scatter", a, idx, m)
	n := m.PopCount()
	d := tc.def
	for i := 0; i < tc.Width; i++ {
		if m.Bit(i) {
			tc.checkLane("atomic-add", a, i, idx[i])
			tc.noteAccess(a.Addr(idx[i]), machine.AccPlain)
			if d != nil {
				d.addF(a, idx[i], val[i])
			} else {
				a.F[idx[i]] += val[i]
			}
		}
	}
	tc.countAtomics(n, false, false)
}

// AtomicAddFScalar atomically accumulates a float into a shared scalar
// (vector-to-scalar reduction + one atomic, ISPC atomic_add_global).
func (tc *TaskCtx) AtomicAddFScalar(a *Array, idx int32, delta float32) {
	tc.checkScalar("atomic-add", a, idx)
	tc.Op(vec.ClassReduce, false)
	tc.noteAccess(a.Addr(idx), machine.AccPlain)
	tc.countAtomics(1, true, false)
	if d := tc.def; d != nil {
		d.addF(a, idx, delta)
		return
	}
	a.F[idx] += delta
}

// AtomicMinLanes performs per-lane atomic mins on distinct locations,
// returning a mask of lanes that lowered the stored value (SSSP/BFS relax).
// A deferred task's improved mask is computed against its own view; the
// logged mins merge monotonically (committed values only decrease), so the
// converged fixed point is unaffected.
func (tc *TaskCtx) AtomicMinLanes(a *Array, idx, val vec.Vec, m vec.Mask) vec.Mask {
	idx = tc.corruptIdx("scatter", a, idx, m)
	var improved vec.Mask
	n := 0
	d := tc.def
	for i := 0; i < tc.Width; i++ {
		if !m.Bit(i) {
			continue
		}
		n++
		tc.checkLane("atomic-min", a, i, idx[i])
		tc.noteAccess(a.Addr(idx[i]), machine.AccPlain)
		if d != nil {
			if val[i] < d.loadI(a, idx[i]) {
				d.minI(a, idx[i], val[i])
				improved = improved.Set(i)
			}
		} else if val[i] < a.I[idx[i]] {
			a.I[idx[i]] = val[i]
			improved = improved.Set(i)
		}
	}
	tc.countAtomics(n, false, false)
	return improved
}

// AtomicCASLanes performs per-lane compare-and-swap on distinct locations,
// returning the mask of lanes that won (stored new). A deferred task wins
// against its own view; at merge the logged CAS applies only if the
// committed value still matches, so each location transitions exactly once.
func (tc *TaskCtx) AtomicCASLanes(a *Array, idx, old, new vec.Vec, m vec.Mask) vec.Mask {
	idx = tc.corruptIdx("scatter", a, idx, m)
	var won vec.Mask
	n := 0
	d := tc.def
	for i := 0; i < tc.Width; i++ {
		if !m.Bit(i) {
			continue
		}
		n++
		tc.checkLane("atomic-cas", a, i, idx[i])
		tc.noteAccess(a.Addr(idx[i]), machine.AccPlain)
		if d != nil {
			if d.loadI(a, idx[i]) == old[i] {
				d.casI(a, idx[i], old[i], new[i])
				won = won.Set(i)
			}
		} else if a.I[idx[i]] == old[i] {
			a.I[idx[i]] = new[i]
			won = won.Set(i)
		}
	}
	tc.countAtomics(n, false, false)
	return won
}

// LocalAtomicLanes models an ISPC local (intra-task) atomic: lockstep
// execution means no hardware atomic is needed, only the lane loop.
func (tc *TaskCtx) LocalAtomicLanes(m vec.Mask) {
	tc.OpN(vec.ClassALU, true, 1)
}
