package spmd

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/vec"
)

// allocSink is a minimal PushTarget for exercising the staging hot path
// without importing the worklist package (which would cycle).
type allocSink struct {
	arr  *Array
	tail int32
	id   int32
}

func newAllocSink(e *Engine, capacity int) *allocSink {
	return &allocSink{arr: e.AllocI("sink", capacity), id: e.RegisterPushTarget()}
}

func (s *allocSink) PushID() int32 { return s.id }

func (s *allocSink) Materialize(items []int32) (*Array, int32, error) {
	start := s.tail
	copy(s.arr.I[start:], items)
	s.tail += int32(len(items))
	return s.arr, start, nil
}

// TestDeferredHotPathAllocationFree pins the tentpole property: once shadow
// buffers, logs, traces and batches have grown to working size, the per-lane
// deferred hot path — gather, scatter, per-lane atomics, push staging —
// performs zero heap allocations. A regression here means a map, a fresh
// buffer, or an interface box crept back into the inner loop.
func TestDeferredHotPathAllocationFree(t *testing.T) {
	e := newModeEngine(1, ExecDeferred)
	a := e.AllocI("a", 64)
	f := e.AllocF("f", 64)
	sink := newAllocSink(e, 1)
	tc := e.newTask(0, 1, ExecDeferred, false)
	m := vec.FullMask(16)
	idx := vec.Iota()
	val := vec.Splat(7)

	work := func() {
		v := tc.GatherI(a, idx, m, vec.Vec{}, false)
		tc.ScatterI(a, idx, v, m)
		fv := tc.GatherF(f, idx, m, vec.FVec{}, false)
		tc.ScatterF(f, idx, fv, m)
		tc.AtomicAddLanes(a, idx, val, m, false)
		b := tc.Batch(sink)
		off := b.StageMasked(val, m, tc.Width)
		tc.NoteStaged(b, off, int32(m.PopCount()))
		// Pointer-variant primitives (the generated backend's hot path) must
		// hold the same zero-allocation bar as their by-value twins.
		var pv vec.Vec
		var pf vec.FVec
		tc.GatherIP(a, &idx, m, false, &pv)
		tc.ScatterIP(a, &idx, &pv, m)
		tc.GatherFP(f, &idx, m, false, &pf)
		tc.ScatterFP(f, &idx, &pf, m)
		tc.LoadVecIP(a, 0, m, &pv)
		tc.AtomicAddLanesP(a, &idx, &val, m, false)
		tc.AtomicAddFLanesP(f, &idx, &pf, m)
		tc.AtomicMinLanesP(a, &idx, &val, m)
		tc.AtomicCASLanesP(a, &idx, &val, &val, m)
	}
	// Grow every buffer past what the measured runs will need, then reset to
	// the (capacity-preserving) segment-start state.
	for i := 0; i < 300; i++ {
		work()
	}
	tc.def.reset()
	if allocs := testing.AllocsPerRun(200, work); allocs != 0 {
		t.Errorf("deferred hot path allocates %.1f objects per op sequence, want 0", allocs)
	}
}

// TestTracingAddsNoAllocations pins both halves of the observability
// overhead contract at the launch level. The tc-level hot path is
// allocation-free (previous test); here a full launch round — launch spans
// on both clocks, iteration span + metrics row, swap instant — must cost
// exactly the same number of objects with observability attached as
// without: with it disabled the hooks bail on a nil check, and with it
// enabled every event lands in the pre-sized buffers (a full buffer drops
// and counts, never grows). The round uses the goroutine-free
// LaunchNoBarrier inline path so the per-round allocation count is
// deterministic; barrier-span recording is a plain ring write covered by
// the obs package's own zero-alloc test.
func TestTracingAddsNoAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is nondeterministic under the race detector")
	}
	measure := func(traced bool) float64 {
		e := newModeEngine(4, ExecDeferred)
		if traced {
			e.Trace = obs.NewTracer(1 << 14)
			e.Metrics = obs.NewMetrics(1 << 8)
		}
		a := e.AllocI("a", 64)
		m := vec.FullMask(16)
		body := func(tc *TaskCtx) {
			idx := vec.Iota()
			v := tc.GatherI(a, idx, m, vec.Vec{}, false)
			tc.ScatterI(a, idx, v, m)
			tc.OpN(vec.ClassALU, false, 8)
		}
		round := func() {
			if err := e.LaunchNoBarrier(4, body); err != nil {
				t.Fatal(err)
			}
			e.IterTick("loop", 1, 16, 64)
			e.IterDone("loop")
			e.NoteSwap(16)
		}
		for i := 0; i < 50; i++ {
			round()
		}
		allocs := testing.AllocsPerRun(100, round)
		if traced && e.Trace.Len() == 0 {
			t.Error("tracer recorded nothing")
		}
		return allocs
	}
	base := measure(false)
	traced := measure(true)
	if traced > base {
		t.Errorf("tracing adds allocations: %.1f per round traced vs %.1f untraced",
			traced, base)
	}
}

// TestAttributionAddsNoAllocations pins the attribution overhead contract:
// a launch round whose task bodies mark phases must cost exactly the same
// number of objects per round as one whose bodies never mark. At steady
// state a mark is a map hit moving the int32 cursor (deferred bodies append
// to the pooled, capacity-retaining phase log), a charge is an indexed add
// into a fixed-size array, and the boundary refold touches only
// pre-registered slots — nothing on the path may allocate. Both variants
// pay the host-side Engine.MarkPhase (whose failure-context pointer store
// predates attribution and boxes one string per call), so the measured
// difference isolates the per-task attribution path.
func TestAttributionAddsNoAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is nondeterministic under the race detector")
	}
	measure := func(marked bool) float64 {
		e := newModeEngine(4, ExecDeferred)
		a := e.AllocI("a", 64)
		m := vec.FullMask(16)
		body := func(tc *TaskCtx) {
			if marked {
				tc.MarkPhase("gather")
			}
			idx := vec.Iota()
			v := tc.GatherI(a, idx, m, vec.Vec{}, false)
			if marked {
				tc.MarkPhase("scatter")
			}
			tc.ScatterI(a, idx, v, m)
			tc.OpN(vec.ClassALU, false, 8)
		}
		round := func() {
			e.MarkPhase("host")
			if err := e.LaunchNoBarrier(4, body); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			round()
		}
		allocs := testing.AllocsPerRun(100, round)
		attr := e.Attribution()
		if got, want := attr.Total(), e.TimeCycles(); got != want {
			t.Errorf("marked=%v: attribution total %v != cycles %v", marked, got, want)
		}
		return allocs
	}
	base := measure(false)
	marked := measure(true)
	if marked > base {
		t.Errorf("attribution adds allocations: %.1f per round marked vs %.1f unmarked",
			marked, base)
	}
}

// TestPoolReuseAcrossLaunches drives many launches through one engine so
// deferred contexts, shadows and batches are recycled from the pool, and
// checks the results stay bit-identical to live execution and across repeated
// runs. Launches alternate which half of the array they write while always
// reading all of it, so a stale shadow epoch or a leftover batch from a
// previous launch would surface as a wrong value.
//
// The repeated-run comparison doubles as the determinism guard for the
// former map-based implementation: the deferred structures are now slices
// traversed in insertion order (shadows by array id, batches by first-use
// order), and the remaining map iterations in the codebase — kernel array
// footprints (module.go) and profile accumulation (profile.go) — fold
// commutatively or sort before reporting.
func TestPoolReuseAcrossLaunches(t *testing.T) {
	run := func(mode Exec) (float64, Stats, []int32) {
		e := newModeEngine(4, mode)
		a := e.AllocI("a", 128)
		sum := e.AllocI("sum", 4)
		m := vec.FullMask(16)
		for launch := 0; launch < 6; launch++ {
			half := int32(launch%2) * 64
			err := e.Launch(4, func(tc *TaskCtx) {
				base := int32(tc.Index * 16)
				// Read the task's stripe of both halves into a shared checksum.
				for _, start := range [2]int32{base, 64 + base} {
					idx := vec.Bin(vec.OpAdd, vec.Iota(), vec.Splat(start), m, 16)
					v := tc.GatherI(a, idx, m, vec.Vec{}, false)
					tc.Op(vec.ClassReduce, false)
					tc.AtomicAddScalar(sum, int32(tc.Index), vec.ReduceAdd(v, m, 16), false)
				}
				tc.Barrier()
				// Write this launch's half, each task a disjoint 16-wide stripe.
				widx := vec.Bin(vec.OpAdd, vec.Iota(), vec.Splat(half+base), m, 16)
				v := tc.GatherI(a, widx, m, vec.Vec{}, false)
				v = vec.Bin(vec.OpAdd, v, vec.Splat(int32(launch+1)), m, tc.Width)
				tc.Op(vec.ClassALU, false)
				tc.ScatterI(a, widx, v, m)
			})
			if err != nil {
				t.Fatalf("mode %d launch %d: %v", mode, launch, err)
			}
			// Host-side mutation between launches: a shadow entry surviving the
			// launch boundary (a missed epoch bump) would mask these values in
			// the next launch's gathers and diverge from live execution.
			for j := range a.I {
				a.I[j] += int32(j % 3)
			}
		}
		out := append(append([]int32(nil), a.I...), sum.I...)
		return e.TimeCycles(), e.Stats, out
	}

	cyc, stats, out := run(ExecLive)
	for _, mode := range []Exec{ExecDeferred, ExecParallel} {
		for trial := 0; trial < 2; trial++ {
			c, s, o := run(mode)
			if c != cyc {
				t.Errorf("mode %d trial %d: cycles %v != live %v", mode, trial, c, cyc)
			}
			if s != stats {
				t.Errorf("mode %d trial %d: stats diverge:\n%v\n%v", mode, trial, &s, &stats)
			}
			if !reflect.DeepEqual(o, out) {
				t.Errorf("mode %d trial %d: outputs diverge from live", mode, trial)
			}
		}
	}
}
