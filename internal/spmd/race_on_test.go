//go:build race

package spmd

// raceEnabled reports whether the race detector is compiled in; allocation
// tests skip under it because its instrumentation allocates nondeterministically.
const raceEnabled = true
