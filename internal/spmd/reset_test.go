package spmd

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/vec"
)

// scatterSentinels runs one deferred launch that writes sentinel into every
// element of a freshly allocated n-element array and returns the array.
func scatterSentinels(t *testing.T, e *Engine, name string, sentinel int32) *Array {
	t.Helper()
	a := e.AllocI(name, 16)
	m := vec.FullMask(16)
	err := e.LaunchNoBarrier(1, func(tc *TaskCtx) {
		tc.ScatterI(a, vec.Iota(), vec.Splat(sentinel), m)
	})
	if err != nil {
		t.Fatalf("sentinel launch: %v", err)
	}
	return a
}

// TestResetAllIsolatesRuns is the request-pool regression test: two
// consecutive runs on one engine must be fully isolated. Without the
// generation bump in ResetAll, the second run's first deferred launch would
// reach a pooled shadow buffer still keyed to the first run's arrays and
// panic on the foreign-array check (or worse, serve the first run's pending
// values); with it, the second run sees pristine state.
func TestResetAllIsolatesRuns(t *testing.T) {
	e := newModeEngine(1, ExecDeferred)

	// Run 1 ("tenant A"): fill an array with sentinels through the deferred
	// write path so the pooled context's shadow table learns its layout.
	a1 := scatterSentinels(t, e, "tenantA", 0x41414141)
	for i, v := range a1.I {
		if v != 0x41414141 {
			t.Fatalf("run 1: a1[%d] = %#x, want sentinel", i, v)
		}
	}
	if e.nArrays == 0 {
		t.Fatal("run 1 registered no arrays")
	}
	footprint := e.Addr.Footprint()

	e.ResetAll(vec.TargetAVX512x16, 1)

	if e.nArrays != 0 || len(e.arrays) != 0 || e.nPush != 0 {
		t.Fatalf("ResetAll left registry state: nArrays=%d len=%d nPush=%d",
			e.nArrays, len(e.arrays), e.nPush)
	}
	if e.Addr.Footprint() != 0 {
		t.Fatalf("ResetAll left address-space footprint %d (was %d)",
			e.Addr.Footprint(), footprint)
	}
	if e.TimeCycles() != 0 || e.Stats != (Stats{}) {
		t.Fatal("ResetAll left clock or statistics")
	}

	// Run 2 ("tenant B"): same-shape allocation receives the same dense id
	// as tenant A's array. A gather before any write must observe zeros —
	// never tenant A's sentinels — and must not panic.
	a2 := e.AllocI("tenantB", 16)
	if a2.id != 0 {
		t.Fatalf("dense ids did not restart: a2.id = %d, want 0", a2.id)
	}
	var got vec.Vec
	m := vec.FullMask(16)
	err := e.LaunchNoBarrier(1, func(tc *TaskCtx) {
		got = tc.GatherI(a2, vec.Iota(), m, vec.Vec{}, false)
	})
	if err != nil {
		t.Fatalf("run 2 launch: %v", err)
	}
	for lane := 0; lane < 16; lane++ {
		if got[lane] != 0 {
			t.Fatalf("run 2 observed prior tenant's data: lane %d = %#x", lane, got[lane])
		}
	}
	// The first run's output snapshot must be untouched by the reuse.
	for i, v := range a1.I {
		if v != 0x41414141 {
			t.Fatalf("run 1 output mutated by reuse: a1[%d] = %#x", i, v)
		}
	}
}

// TestResetAllClearsRunConfig pins that attachments and budgets from one
// request can't leak into the next: a budget, injector, pager and profiler
// configured for run 1 are gone after ResetAll.
func TestResetAllClearsRunConfig(t *testing.T) {
	e := newModeEngine(2, ExecDeferred)
	e.Budget = fault.Budget{MaxIters: 3, MaxCycles: 12, StallWindow: 2}
	e.Inject = fault.NewInjector(7, fault.Config{Transient: 1})
	e.EnableProfiling()
	e.NoSMT = true
	e.AddCycles(1e6)

	e.ResetAll(vec.TargetAVX512x16, 2)

	if e.Budget.Enabled() {
		t.Error("budget survived ResetAll")
	}
	if e.Inject != nil {
		t.Error("injector survived ResetAll")
	}
	if e.prof != nil {
		t.Error("profiler survived ResetAll")
	}
	if e.NoSMT {
		t.Error("NoSMT survived ResetAll")
	}
	if e.TimeCycles() != 0 {
		t.Error("modeled clock survived ResetAll")
	}
}

// TestResetAllEpochWrap exercises the PR-3 epoch-wrap boundary on the reuse
// path: a pooled shadow whose epoch sits at the uint32 maximum wraps during
// the next run's segment clears. The wrap rewrites all stamps, so no element
// written under an ancient epoch may alias a future one — a reused engine
// must keep returning committed values, not stale pending writes.
func TestResetAllEpochWrap(t *testing.T) {
	e := newModeEngine(1, ExecDeferred)

	// Prime the pool with a context whose shadows exist, then push its
	// epochs to the wrap boundary. Under -race sync.Pool drops Puts at
	// random, so re-prime until the pooled context comes back.
	var d *deferredCtx
	for i := 0; i < 50 && (d == nil || len(d.shadows) == 0); i++ {
		scatterSentinels(t, e, fmt.Sprintf("prime%d", i), 7)
		d = e.getDeferredCtx()
	}
	if len(d.shadows) == 0 {
		t.Fatal("pooled context has no shadows to age")
	}
	for _, sh := range d.shadows {
		if sh == nil {
			continue
		}
		// Simulate a shadow one clear away from wrapping, with every stamp
		// claiming validity under the current epoch — the most adversarial
		// aliasing setup the wrap handling must defuse.
		sh.epoch = math.MaxUint32
		for i := range sh.sv {
			sh.sv[i] = uint64(math.MaxUint32) << 32
		}
	}
	d.reset() // segment clear at the boundary: wraps to epoch 1, stamps rewritten
	for _, sh := range d.shadows {
		if sh == nil {
			continue
		}
		if sh.epoch != 1 {
			t.Fatalf("epoch after wrap = %d, want 1", sh.epoch)
		}
		for i, w := range sh.sv {
			if uint32(w>>32) == sh.epoch {
				t.Fatalf("stamp[%d] aliases the post-wrap epoch: stale write resurfaces", i)
			}
		}
	}
	e.defPool.Put(d)

	// Full reuse cycle across the wrapped pool: reset the engine and run a
	// fresh tenant; the recycled (wrapped, then generation-dropped) context
	// must serve clean reads.
	e.ResetAll(vec.TargetAVX512x16, 1)
	a := e.AllocI("fresh", 16)
	m := vec.FullMask(16)
	var got vec.Vec
	err := e.LaunchNoBarrier(1, func(tc *TaskCtx) {
		tc.ScatterI(a, vec.Iota(), vec.Splat(9), m)
		got = tc.GatherI(a, vec.Iota(), m, vec.Vec{}, false)
	})
	if err != nil {
		t.Fatalf("post-wrap launch: %v", err)
	}
	for lane := 0; lane < 16; lane++ {
		if got[lane] != 9 {
			t.Fatalf("post-wrap read lane %d = %d, want 9", lane, got[lane])
		}
	}
	for i, v := range a.I {
		if v != 9 {
			t.Fatalf("post-wrap commit a[%d] = %d, want 9", i, v)
		}
	}
}

// TestResetAllKeepsLayoutFreeCapacity pins the economics of engine pooling:
// op-log and access-trace capacity survives ResetAll (only the dense-id-keyed
// shadow and batch tables drop), so a reused engine's second run does not
// regrow every buffer from zero.
func TestResetAllKeepsLayoutFreeCapacity(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; retention economics are untestable here")
	}
	e := newModeEngine(1, ExecDeferred)
	scatterSentinels(t, e, "grow", 1)
	d := e.getDeferredCtx()
	opsCap, accCap := cap(d.ops), cap(d.acc)
	if opsCap == 0 || accCap == 0 {
		t.Fatalf("priming run grew nothing: ops cap %d, acc cap %d", opsCap, accCap)
	}
	e.defPool.Put(d)

	e.ResetAll(vec.TargetAVX512x16, 1)
	d = e.getDeferredCtx()
	if len(d.shadows) != 0 {
		t.Errorf("shadow table survived generation bump: len %d", len(d.shadows))
	}
	if cap(d.ops) != opsCap || cap(d.acc) != accCap {
		t.Errorf("layout-free capacity dropped: ops %d->%d, acc %d->%d",
			opsCap, cap(d.ops), accCap, cap(d.acc))
	}
	e.defPool.Put(d)
}
