package spmd

import (
	"math"
	"math/bits"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/vec"
)

// Pointer-variant memory and atomic primitives for the generated-Go kernel
// backend (internal/compiled). Each is the exact accounting twin of its
// by-value counterpart in taskctx.go — same bounds-check, trace-note,
// injection-draw and counter order — but reads operands and writes results
// through pointers, so the 128-byte vec.Vec values stay in the caller's
// stack frame instead of being copied per call (the interpreter's dominant
// wall-clock cost). Results use the same merge semantics: only active lanes
// of *dst are written.
//
// Beyond the calling convention, these variants specialize the two hottest
// costing configurations into fused single-pass lane loops with all
// loop-invariant state hoisted (shadow buffer, epoch, cache model, cost
// table): a stage-free cooperative segment (segImmediate, pager off) probes
// the hierarchy and records one cost byte per access, and live mode charges
// stalls directly. Recording mode and pager-attached runs take the generic
// path through noteAccess and the deferredCtx accessors. Active lanes are
// walked by clearing set bits of the mask, so per-lane order — and with it
// every trace, cost-byte, op-log and stall append — is exactly the
// ascending-lane order of the generic loops: modeled output is bit-identical
// across all paths by construction.
//
// Any change here must be mirrored against taskctx.go and is guarded by the
// interp-vs-compiled differential tests.

// recAccess appends one committed-access trace event to acc with the same
// line-level run folding noteAccess performs (same staged-bit, kind, count
// and line checks, in the same order), operating on a caller-hoisted slice so
// fused recording loops stay call-free per lane. ds must be non-zero (the
// engine disables folding under a pager by zeroing dedupShift, and those runs
// take the generic noteAccess path).
func recAccess(acc []int64, addr, k64 int64, ds uint) []int64 {
	if n := len(acc) - 1; n >= 0 {
		last := acc[n]
		if last&accStagedBit == 0 &&
			(last>>accKindShift)&3 == k64 &&
			last>>accCountShift < accMaxCount &&
			((last>>accAddrShift)&accAddrMask)>>ds == addr>>ds {
			acc[n] = last + 1<<accCountShift
			return acc
		}
	}
	return append(acc, addr<<accAddrShift|k64<<accKindShift)
}

// shadowView returns the task's pending-write view of a for lane loads: the
// packed stamp|value words and current epoch, or a nil slice when the task
// has no shadow for a (then committed values are authoritative).
func (d *deferredCtx) shadowView(a *Array) ([]uint64, uint32) {
	if id := int(a.id); id < len(d.shadows) {
		if sh := d.shadows[id]; sh != nil {
			return sh.sv, sh.epoch
		}
	}
	return nil, 0
}

// GatherIP is GatherI writing into *dst (active lanes only).
func (tc *TaskCtx) GatherIP(a *Array, idx *vec.Vec, m vec.Mask, inner bool, dst *vec.Vec) {
	if tc.E.Inject != nil {
		tmp := tc.corruptIdx("gather", a, *idx, m)
		idx = &tmp
	}
	if inner {
		tc.InnerOp(vec.ClassGather, true, m.PopCount())
	} else {
		tc.Op(vec.ClassGather, true)
	}
	kind := tc.gatherKind()
	e := tc.E
	w := tc.Width
	d := tc.def
	if d != nil && d.mode == segImmediate && e.Pager == nil {
		mm, core, base := e.Mem, tc.core, a.Base
		ls := mm.LineShift()
		tags, tmask := mm.L1View(core)
		un := uint32(a.Len())
		kb := byte(kind) << 2
		sv, ep := d.shadowView(a)
		src := a.I
		costs := d.costs
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				tc.checkLane("gather", a, i, ii)
			}
			addr := base + int64(ii)*4
			if line := addr >> ls; tags[line&tmask] == line {
				mm.RepeatHits(1) // inline L1-hit probe; kb|L1 == kb (L1 is level 0)
				costs = append(costs, kb)
			} else {
				costs = append(costs, kb|byte(mm.Access(core, addr)))
			}
			v := src[ii]
			if sv != nil {
				if wd := sv[ii]; uint32(wd>>32) == ep {
					v = int32(uint32(wd))
				}
			}
			dst[i] = v
		}
		d.costs = costs
		return
	}
	if d != nil && d.dedupShift != 0 {
		// Fused recording loop: one pass per lane, trace words folded inline
		// (recAccess mirrors noteAccess exactly) and the shadow view hoisted.
		// The generic path notes all lanes then loads all lanes; loads append
		// nothing, so interleaving them lane-by-lane leaves the trace and the
		// loaded values bit-identical.
		base := a.Base
		un := uint32(a.Len())
		ds, k64 := d.dedupShift, int64(kind)
		sv, ep := d.shadowView(a)
		src := a.I
		d.mode = segRecording
		acc := d.acc
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				d.acc = acc
				tc.checkLane("gather", a, i, ii)
			}
			acc = recAccess(acc, base+int64(ii)*4, k64, ds)
			v := src[ii]
			if sv != nil {
				if wd := sv[ii]; uint32(wd>>32) == ep {
					v = int32(uint32(wd))
				}
			}
			dst[i] = v
		}
		d.acc = acc
		return
	}
	if d != nil {
		for i := 0; i < w; i++ {
			if m.Bit(i) {
				tc.checkLane("gather", a, i, idx[i])
				tc.noteAccess(a.Addr(idx[i]), kind)
			}
		}
		for i := 0; i < w; i++ {
			if m.Bit(i) {
				dst[i] = d.loadI(a, idx[i])
			}
		}
		return
	}
	if e.Pager == nil {
		mm, core, base := e.Mem, tc.core, a.Base
		ls := mm.LineShift()
		tags, tmask := mm.L1View(core)
		un := uint32(a.Len())
		tab := &e.stallTab[kind]
		l1c := tab[machine.L1]
		cls := accCostClass[kind]
		src := a.I
		stall := tc.stl[cls]
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				tc.stl[cls] = stall
				tc.checkLane("gather", a, i, ii)
			}
			addr := base + int64(ii)*4
			if line := addr >> ls; tags[line&tmask] == line {
				mm.RepeatHits(1)
				stall += l1c
			} else {
				stall += tab[mm.Access(core, addr)]
			}
			dst[i] = src[ii]
		}
		tc.stl[cls] = stall
		return
	}
	src := a.I
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			tc.checkLane("gather", a, i, idx[i])
			tc.noteAccess(a.Addr(idx[i]), kind)
			dst[i] = src[idx[i]]
		}
	}
}

// GatherFP is GatherF writing into *dst (active lanes only).
func (tc *TaskCtx) GatherFP(a *Array, idx *vec.Vec, m vec.Mask, inner bool, dst *vec.FVec) {
	if tc.E.Inject != nil {
		tmp := tc.corruptIdx("gather", a, *idx, m)
		idx = &tmp
	}
	if inner {
		tc.InnerOp(vec.ClassGather, true, m.PopCount())
	} else {
		tc.Op(vec.ClassGather, true)
	}
	kind := tc.gatherKind()
	e := tc.E
	w := tc.Width
	d := tc.def
	if d != nil && d.mode == segImmediate && e.Pager == nil {
		mm, core, base := e.Mem, tc.core, a.Base
		ls := mm.LineShift()
		tags, tmask := mm.L1View(core)
		un := uint32(a.Len())
		kb := byte(kind) << 2
		sv, ep := d.shadowView(a)
		src := a.F
		costs := d.costs
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				tc.checkLane("gather", a, i, ii)
			}
			addr := base + int64(ii)*4
			if line := addr >> ls; tags[line&tmask] == line {
				mm.RepeatHits(1) // inline L1-hit probe; kb|L1 == kb (L1 is level 0)
				costs = append(costs, kb)
			} else {
				costs = append(costs, kb|byte(mm.Access(core, addr)))
			}
			v := src[ii]
			if sv != nil {
				if wd := sv[ii]; uint32(wd>>32) == ep {
					v = math.Float32frombits(uint32(wd))
				}
			}
			dst[i] = v
		}
		d.costs = costs
		return
	}
	if d != nil && d.dedupShift != 0 {
		base := a.Base
		un := uint32(a.Len())
		ds, k64 := d.dedupShift, int64(kind)
		sv, ep := d.shadowView(a)
		src := a.F
		d.mode = segRecording
		acc := d.acc
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				d.acc = acc
				tc.checkLane("gather", a, i, ii)
			}
			acc = recAccess(acc, base+int64(ii)*4, k64, ds)
			v := src[ii]
			if sv != nil {
				if wd := sv[ii]; uint32(wd>>32) == ep {
					v = math.Float32frombits(uint32(wd))
				}
			}
			dst[i] = v
		}
		d.acc = acc
		return
	}
	if d != nil {
		for i := 0; i < w; i++ {
			if m.Bit(i) {
				tc.checkLane("gather", a, i, idx[i])
				tc.noteAccess(a.Addr(idx[i]), kind)
			}
		}
		for i := 0; i < w; i++ {
			if m.Bit(i) {
				dst[i] = d.loadF(a, idx[i])
			}
		}
		return
	}
	if e.Pager == nil {
		mm, core, base := e.Mem, tc.core, a.Base
		ls := mm.LineShift()
		tags, tmask := mm.L1View(core)
		un := uint32(a.Len())
		tab := &e.stallTab[kind]
		l1c := tab[machine.L1]
		cls := accCostClass[kind]
		src := a.F
		stall := tc.stl[cls]
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				tc.stl[cls] = stall
				tc.checkLane("gather", a, i, ii)
			}
			addr := base + int64(ii)*4
			if line := addr >> ls; tags[line&tmask] == line {
				mm.RepeatHits(1)
				stall += l1c
			} else {
				stall += tab[mm.Access(core, addr)]
			}
			dst[i] = src[ii]
		}
		tc.stl[cls] = stall
		return
	}
	src := a.F
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			tc.checkLane("gather", a, i, idx[i])
			tc.noteAccess(a.Addr(idx[i]), kind)
			dst[i] = src[idx[i]]
		}
	}
}

// ScatterIP is ScatterI with pointer operands.
func (tc *TaskCtx) ScatterIP(a *Array, idx, val *vec.Vec, m vec.Mask) {
	if tc.E.Inject != nil {
		tmp := tc.corruptIdx("scatter", a, *idx, m)
		idx = &tmp
	}
	tc.Op(vec.ClassScatter, true)
	e := tc.E
	w := tc.Width
	d := tc.def
	if d != nil && d.mode == segImmediate && e.Pager == nil {
		mm, core, base := e.Mem, tc.core, a.Base
		ls := mm.LineShift()
		tags, tmask := mm.L1View(core)
		un := uint32(a.Len())
		sh := d.shadowFor(a)
		sv, epHi := sh.sv, uint64(sh.epoch)<<32
		aid := a.id
		ops := d.ops
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				tc.checkLane("scatter", a, i, ii)
			}
			addr := base + int64(ii)*4
			if line := addr >> ls; tags[line&tmask] == line {
				mm.RepeatHits(1) // inline L1-hit probe; AccPlain: no stall
			} else {
				mm.Access(core, addr)
			}
			sv[ii] = epHi | uint64(uint32(val[i]))
			ops = append(ops, memOp{aid: aid, idx: ii, op: opStoreI, iv: val[i]})
		}
		d.ops = ops
		return
	}
	if d != nil && d.dedupShift != 0 {
		base := a.Base
		un := uint32(a.Len())
		ds, k64 := d.dedupShift, int64(machine.AccPlain)
		sh := d.shadowFor(a)
		sv, epHi := sh.sv, uint64(sh.epoch)<<32
		aid := a.id
		d.mode = segRecording
		acc, ops := d.acc, d.ops
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				d.acc = acc
				tc.checkLane("scatter", a, i, ii)
			}
			acc = recAccess(acc, base+int64(ii)*4, k64, ds)
			sv[ii] = epHi | uint64(uint32(val[i]))
			ops = append(ops, memOp{aid: aid, idx: ii, op: opStoreI, iv: val[i]})
		}
		d.acc, d.ops = acc, ops
		return
	}
	if d != nil {
		for i := 0; i < w; i++ {
			if m.Bit(i) {
				tc.checkLane("scatter", a, i, idx[i])
				tc.noteAccess(a.Addr(idx[i]), machine.AccPlain)
			}
		}
		for i := 0; i < w; i++ {
			if m.Bit(i) {
				d.storeI(a, idx[i], val[i])
			}
		}
		return
	}
	if e.Pager == nil {
		mm, core, base := e.Mem, tc.core, a.Base
		ls := mm.LineShift()
		tags, tmask := mm.L1View(core)
		un := uint32(a.Len())
		dst := a.I
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				tc.checkLane("scatter", a, i, ii)
			}
			addr := base + int64(ii)*4
			if line := addr >> ls; tags[line&tmask] == line {
				mm.RepeatHits(1) // inline L1-hit probe; AccPlain: no stall
			} else {
				mm.Access(core, addr)
			}
			dst[ii] = val[i]
		}
		return
	}
	dst := a.I
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			tc.checkLane("scatter", a, i, idx[i])
			tc.noteAccess(a.Addr(idx[i]), machine.AccPlain)
			dst[idx[i]] = val[i]
		}
	}
}

// ScatterFP is ScatterF with pointer operands.
func (tc *TaskCtx) ScatterFP(a *Array, idx *vec.Vec, val *vec.FVec, m vec.Mask) {
	if tc.E.Inject != nil {
		tmp := tc.corruptIdx("scatter", a, *idx, m)
		idx = &tmp
	}
	tc.Op(vec.ClassScatter, true)
	e := tc.E
	w := tc.Width
	d := tc.def
	if d != nil && d.mode == segImmediate && e.Pager == nil {
		mm, core, base := e.Mem, tc.core, a.Base
		ls := mm.LineShift()
		tags, tmask := mm.L1View(core)
		un := uint32(a.Len())
		sh := d.shadowFor(a)
		sv, epHi := sh.sv, uint64(sh.epoch)<<32
		aid := a.id
		ops := d.ops
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				tc.checkLane("scatter", a, i, ii)
			}
			addr := base + int64(ii)*4
			if line := addr >> ls; tags[line&tmask] == line {
				mm.RepeatHits(1) // inline L1-hit probe; AccPlain: no stall
			} else {
				mm.Access(core, addr)
			}
			sv[ii] = epHi | uint64(math.Float32bits(val[i]))
			ops = append(ops, memOp{aid: aid, idx: ii, op: opStoreF, fv: val[i]})
		}
		d.ops = ops
		return
	}
	if d != nil && d.dedupShift != 0 {
		base := a.Base
		un := uint32(a.Len())
		ds, k64 := d.dedupShift, int64(machine.AccPlain)
		sh := d.shadowFor(a)
		sv, epHi := sh.sv, uint64(sh.epoch)<<32
		aid := a.id
		d.mode = segRecording
		acc, ops := d.acc, d.ops
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				d.acc = acc
				tc.checkLane("scatter", a, i, ii)
			}
			acc = recAccess(acc, base+int64(ii)*4, k64, ds)
			sv[ii] = epHi | uint64(math.Float32bits(val[i]))
			ops = append(ops, memOp{aid: aid, idx: ii, op: opStoreF, fv: val[i]})
		}
		d.acc, d.ops = acc, ops
		return
	}
	if d != nil {
		for i := 0; i < w; i++ {
			if m.Bit(i) {
				tc.checkLane("scatter", a, i, idx[i])
				tc.noteAccess(a.Addr(idx[i]), machine.AccPlain)
			}
		}
		for i := 0; i < w; i++ {
			if m.Bit(i) {
				d.storeF(a, idx[i], val[i])
			}
		}
		return
	}
	if e.Pager == nil {
		mm, core, base := e.Mem, tc.core, a.Base
		ls := mm.LineShift()
		tags, tmask := mm.L1View(core)
		un := uint32(a.Len())
		dst := a.F
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				tc.checkLane("scatter", a, i, ii)
			}
			addr := base + int64(ii)*4
			if line := addr >> ls; tags[line&tmask] == line {
				mm.RepeatHits(1) // inline L1-hit probe; AccPlain: no stall
			} else {
				mm.Access(core, addr)
			}
			dst[ii] = val[i]
		}
		return
	}
	dst := a.F
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			tc.checkLane("scatter", a, i, idx[i])
			tc.noteAccess(a.Addr(idx[i]), machine.AccPlain)
			dst[idx[i]] = val[i]
		}
	}
}

// LoadVecIP is LoadVecI writing into *dst (active lanes only).
func (tc *TaskCtx) LoadVecIP(a *Array, start int32, m vec.Mask, dst *vec.Vec) {
	tc.Op(vec.ClassVLoad, m != vec.FullMask(tc.Width))
	e := tc.E
	w := tc.Width
	d := tc.def
	if d != nil && d.mode == segImmediate && e.Pager == nil {
		mm, core, base := e.Mem, tc.core, a.Base
		ls := mm.LineShift()
		tags, tmask := mm.L1View(core)
		un := uint32(a.Len())
		sv, ep := d.shadowView(a)
		src := a.I
		costs := d.costs
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := start + int32(i)
			if uint32(ii) >= un {
				tc.checkLane("vload", a, i, ii)
			}
			kb := byte(machine.AccStream) << 2
			if i == 0 {
				kb = byte(machine.AccLoad) << 2
			}
			addr := base + int64(ii)*4
			if line := addr >> ls; tags[line&tmask] == line {
				mm.RepeatHits(1) // inline L1-hit probe; kb|L1 == kb (L1 is level 0)
				costs = append(costs, kb)
			} else {
				costs = append(costs, kb|byte(mm.Access(core, addr)))
			}
			v := src[ii]
			if sv != nil {
				if wd := sv[ii]; uint32(wd>>32) == ep {
					v = int32(uint32(wd))
				}
			}
			dst[i] = v
		}
		d.costs = costs
		return
	}
	if d != nil && d.dedupShift != 0 {
		base := a.Base
		un := uint32(a.Len())
		ds := d.dedupShift
		sv, ep := d.shadowView(a)
		src := a.I
		d.mode = segRecording
		acc := d.acc
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := start + int32(i)
			if uint32(ii) >= un {
				d.acc = acc
				tc.checkLane("vload", a, i, ii)
			}
			k64 := int64(machine.AccStream)
			if i == 0 {
				k64 = int64(machine.AccLoad)
			}
			acc = recAccess(acc, base+int64(ii)*4, k64, ds)
			v := src[ii]
			if sv != nil {
				if wd := sv[ii]; uint32(wd>>32) == ep {
					v = int32(uint32(wd))
				}
			}
			dst[i] = v
		}
		d.acc = acc
		return
	}
	if d != nil {
		for i := 0; i < w; i++ {
			if m.Bit(i) {
				tc.checkLane("vload", a, i, start+int32(i))
				kind := machine.AccStream
				if i == 0 {
					kind = machine.AccLoad
				}
				tc.noteAccess(a.Addr(start+int32(i)), kind)
			}
		}
		for i := 0; i < w; i++ {
			if m.Bit(i) {
				dst[i] = d.loadI(a, start+int32(i))
			}
		}
		return
	}
	if e.Pager == nil {
		mm, core, base := e.Mem, tc.core, a.Base
		ls := mm.LineShift()
		tags, tmask := mm.L1View(core)
		un := uint32(a.Len())
		src := a.I
		// Two class-split stall locals: the leading lane's full-latency load
		// charges CostMemLoad, continuation lanes charge CostDenseStream.
		// Both restore on the bounds-unwind path, mirroring the single-local
		// pattern of the gather loops.
		stLoad := tc.stl[obs.CostMemLoad]
		stStream := tc.stl[obs.CostDenseStream]
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := start + int32(i)
			if uint32(ii) >= un {
				tc.stl[obs.CostMemLoad], tc.stl[obs.CostDenseStream] = stLoad, stStream
				tc.checkLane("vload", a, i, ii)
			}
			kind := machine.AccStream
			if i == 0 {
				kind = machine.AccLoad
			}
			addr := base + int64(ii)*4
			var c float64
			if line := addr >> ls; tags[line&tmask] == line {
				mm.RepeatHits(1)
				c = e.stallTab[kind][machine.L1]
			} else {
				c = e.stallTab[kind][mm.Access(core, addr)]
			}
			if i == 0 {
				stLoad += c
			} else {
				stStream += c
			}
			dst[i] = src[ii]
		}
		tc.stl[obs.CostMemLoad], tc.stl[obs.CostDenseStream] = stLoad, stStream
		return
	}
	src := a.I
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			tc.checkLane("vload", a, i, start+int32(i))
			kind := machine.AccStream
			if i == 0 {
				kind = machine.AccLoad
			}
			tc.noteAccess(a.Addr(start+int32(i)), kind)
			dst[i] = src[start+int32(i)]
		}
	}
}

// AtomicMinLanesP is AtomicMinLanes with pointer operands.
func (tc *TaskCtx) AtomicMinLanesP(a *Array, idx, val *vec.Vec, m vec.Mask) vec.Mask {
	if tc.E.Inject != nil {
		tmp := tc.corruptIdx("scatter", a, *idx, m)
		idx = &tmp
	}
	var improved vec.Mask
	e := tc.E
	d := tc.def
	w := tc.Width
	if d != nil && d.mode == segImmediate && e.Pager == nil {
		mm, core, base := e.Mem, tc.core, a.Base
		ls := mm.LineShift()
		tags, tmask := mm.L1View(core)
		un := uint32(a.Len())
		sh := d.shadowFor(a)
		sv, ep := sh.sv, sh.epoch
		epHi := uint64(ep) << 32
		aid := a.id
		src := a.I
		ops := d.ops
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				tc.checkLane("atomic-min", a, i, ii)
			}
			addr := base + int64(ii)*4
			if line := addr >> ls; tags[line&tmask] == line {
				mm.RepeatHits(1) // inline L1-hit probe; AccPlain: no stall
			} else {
				mm.Access(core, addr)
			}
			cur := src[ii]
			if wd := sv[ii]; uint32(wd>>32) == ep {
				cur = int32(uint32(wd))
			}
			if val[i] < cur {
				sv[ii] = epHi | uint64(uint32(val[i]))
				ops = append(ops, memOp{aid: aid, idx: ii, op: opMinI, iv: val[i]})
				improved = improved.Set(i)
			}
		}
		d.ops = ops
		tc.countAtomics(m.PopCount(), false, false)
		return improved
	}
	if d != nil && d.dedupShift != 0 {
		base := a.Base
		un := uint32(a.Len())
		ds, k64 := d.dedupShift, int64(machine.AccPlain)
		sh := d.shadowFor(a)
		sv, ep := sh.sv, sh.epoch
		epHi := uint64(ep) << 32
		aid := a.id
		src := a.I
		d.mode = segRecording
		acc, ops := d.acc, d.ops
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				d.acc, d.ops = acc, ops
				tc.checkLane("atomic-min", a, i, ii)
			}
			acc = recAccess(acc, base+int64(ii)*4, k64, ds)
			cur := src[ii]
			if wd := sv[ii]; uint32(wd>>32) == ep {
				cur = int32(uint32(wd))
			}
			if val[i] < cur {
				sv[ii] = epHi | uint64(uint32(val[i]))
				ops = append(ops, memOp{aid: aid, idx: ii, op: opMinI, iv: val[i]})
				improved = improved.Set(i)
			}
		}
		d.acc, d.ops = acc, ops
		tc.countAtomics(m.PopCount(), false, false)
		return improved
	}
	n := 0
	for i := 0; i < w; i++ {
		if !m.Bit(i) {
			continue
		}
		n++
		tc.checkLane("atomic-min", a, i, idx[i])
		tc.noteAccess(a.Addr(idx[i]), machine.AccPlain)
		if d != nil {
			if val[i] < d.loadI(a, idx[i]) {
				d.minI(a, idx[i], val[i])
				improved = improved.Set(i)
			}
		} else if val[i] < a.I[idx[i]] {
			a.I[idx[i]] = val[i]
			improved = improved.Set(i)
		}
	}
	tc.countAtomics(n, false, false)
	return improved
}

// AtomicCASLanesP is AtomicCASLanes with pointer operands.
func (tc *TaskCtx) AtomicCASLanesP(a *Array, idx, old, new *vec.Vec, m vec.Mask) vec.Mask {
	if tc.E.Inject != nil {
		tmp := tc.corruptIdx("scatter", a, *idx, m)
		idx = &tmp
	}
	var won vec.Mask
	e := tc.E
	d := tc.def
	w := tc.Width
	if d != nil && d.mode == segImmediate && e.Pager == nil {
		mm, core, base := e.Mem, tc.core, a.Base
		ls := mm.LineShift()
		tags, tmask := mm.L1View(core)
		un := uint32(a.Len())
		sh := d.shadowFor(a)
		sv, ep := sh.sv, sh.epoch
		epHi := uint64(ep) << 32
		aid := a.id
		src := a.I
		ops := d.ops
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				tc.checkLane("atomic-cas", a, i, ii)
			}
			addr := base + int64(ii)*4
			if line := addr >> ls; tags[line&tmask] == line {
				mm.RepeatHits(1) // inline L1-hit probe; AccPlain: no stall
			} else {
				mm.Access(core, addr)
			}
			cur := src[ii]
			if wd := sv[ii]; uint32(wd>>32) == ep {
				cur = int32(uint32(wd))
			}
			if cur == old[i] {
				sv[ii] = epHi | uint64(uint32(new[i]))
				ops = append(ops, memOp{aid: aid, idx: ii, op: opCASI, iv: new[i], old: old[i]})
				won = won.Set(i)
			}
		}
		d.ops = ops
		tc.countAtomics(m.PopCount(), false, false)
		return won
	}
	if d != nil && d.dedupShift != 0 {
		base := a.Base
		un := uint32(a.Len())
		ds, k64 := d.dedupShift, int64(machine.AccPlain)
		sh := d.shadowFor(a)
		sv, ep := sh.sv, sh.epoch
		epHi := uint64(ep) << 32
		aid := a.id
		src := a.I
		d.mode = segRecording
		acc, ops := d.acc, d.ops
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				d.acc, d.ops = acc, ops
				tc.checkLane("atomic-cas", a, i, ii)
			}
			acc = recAccess(acc, base+int64(ii)*4, k64, ds)
			cur := src[ii]
			if wd := sv[ii]; uint32(wd>>32) == ep {
				cur = int32(uint32(wd))
			}
			if cur == old[i] {
				sv[ii] = epHi | uint64(uint32(new[i]))
				ops = append(ops, memOp{aid: aid, idx: ii, op: opCASI, iv: new[i], old: old[i]})
				won = won.Set(i)
			}
		}
		d.acc, d.ops = acc, ops
		tc.countAtomics(m.PopCount(), false, false)
		return won
	}
	n := 0
	for i := 0; i < w; i++ {
		if !m.Bit(i) {
			continue
		}
		n++
		tc.checkLane("atomic-cas", a, i, idx[i])
		tc.noteAccess(a.Addr(idx[i]), machine.AccPlain)
		if d != nil {
			if d.loadI(a, idx[i]) == old[i] {
				d.casI(a, idx[i], old[i], new[i])
				won = won.Set(i)
			}
		} else if a.I[idx[i]] == old[i] {
			a.I[idx[i]] = new[i]
			won = won.Set(i)
		}
	}
	tc.countAtomics(n, false, false)
	return won
}

// AtomicAddLanesP is AtomicAddLanes with pointer operands.
func (tc *TaskCtx) AtomicAddLanesP(a *Array, idx, val *vec.Vec, m vec.Mask, push bool) {
	if tc.E.Inject != nil {
		tmp := tc.corruptIdx("scatter", a, *idx, m)
		idx = &tmp
	}
	n := m.PopCount()
	e := tc.E
	d := tc.def
	w := tc.Width
	if d != nil && d.mode == segImmediate && e.Pager == nil {
		mm, core, base := e.Mem, tc.core, a.Base
		ls := mm.LineShift()
		tags, tmask := mm.L1View(core)
		un := uint32(a.Len())
		sh := d.shadowFor(a)
		sv, ep := sh.sv, sh.epoch
		epHi := uint64(ep) << 32
		aid := a.id
		src := a.I
		ops := d.ops
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				tc.checkLane("atomic-add", a, i, ii)
			}
			addr := base + int64(ii)*4
			if line := addr >> ls; tags[line&tmask] == line {
				mm.RepeatHits(1) // inline L1-hit probe; AccPlain: no stall
			} else {
				mm.Access(core, addr)
			}
			old := src[ii]
			if wd := sv[ii]; uint32(wd>>32) == ep {
				old = int32(uint32(wd))
			}
			sv[ii] = epHi | uint64(uint32(old+val[i]))
			ops = append(ops, memOp{aid: aid, idx: ii, op: opAddI, iv: val[i]})
		}
		d.ops = ops
		tc.countAtomics(n, false, push)
		return
	}
	if d != nil && d.dedupShift != 0 {
		base := a.Base
		un := uint32(a.Len())
		ds, k64 := d.dedupShift, int64(machine.AccPlain)
		sh := d.shadowFor(a)
		sv, ep := sh.sv, sh.epoch
		epHi := uint64(ep) << 32
		aid := a.id
		src := a.I
		d.mode = segRecording
		acc, ops := d.acc, d.ops
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				d.acc, d.ops = acc, ops
				tc.checkLane("atomic-add", a, i, ii)
			}
			acc = recAccess(acc, base+int64(ii)*4, k64, ds)
			old := src[ii]
			if wd := sv[ii]; uint32(wd>>32) == ep {
				old = int32(uint32(wd))
			}
			sv[ii] = epHi | uint64(uint32(old+val[i]))
			ops = append(ops, memOp{aid: aid, idx: ii, op: opAddI, iv: val[i]})
		}
		d.acc, d.ops = acc, ops
		tc.countAtomics(n, false, push)
		return
	}
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			tc.checkLane("atomic-add", a, i, idx[i])
			tc.noteAccess(a.Addr(idx[i]), machine.AccPlain)
			if d != nil {
				d.addI(a, idx[i], val[i])
			} else {
				a.I[idx[i]] += val[i]
			}
		}
	}
	tc.countAtomics(n, false, push)
}

// AtomicAddFLanesP is AtomicAddFLanes with pointer operands.
func (tc *TaskCtx) AtomicAddFLanesP(a *Array, idx *vec.Vec, val *vec.FVec, m vec.Mask) {
	if tc.E.Inject != nil {
		tmp := tc.corruptIdx("scatter", a, *idx, m)
		idx = &tmp
	}
	n := m.PopCount()
	e := tc.E
	d := tc.def
	w := tc.Width
	if d != nil && d.mode == segImmediate && e.Pager == nil {
		mm, core, base := e.Mem, tc.core, a.Base
		ls := mm.LineShift()
		tags, tmask := mm.L1View(core)
		un := uint32(a.Len())
		sh := d.shadowFor(a)
		sv, ep := sh.sv, sh.epoch
		epHi := uint64(ep) << 32
		aid := a.id
		src := a.F
		ops := d.ops
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				tc.checkLane("atomic-add", a, i, ii)
			}
			addr := base + int64(ii)*4
			if line := addr >> ls; tags[line&tmask] == line {
				mm.RepeatHits(1) // inline L1-hit probe; AccPlain: no stall
			} else {
				mm.Access(core, addr)
			}
			old := src[ii]
			if wd := sv[ii]; uint32(wd>>32) == ep {
				old = math.Float32frombits(uint32(wd))
			}
			sv[ii] = epHi | uint64(math.Float32bits(old+val[i]))
			ops = append(ops, memOp{aid: aid, idx: ii, op: opAddF, fv: val[i]})
		}
		d.ops = ops
		tc.countAtomics(n, false, false)
		return
	}
	if d != nil && d.dedupShift != 0 {
		base := a.Base
		un := uint32(a.Len())
		ds, k64 := d.dedupShift, int64(machine.AccPlain)
		sh := d.shadowFor(a)
		sv, ep := sh.sv, sh.epoch
		epHi := uint64(ep) << 32
		aid := a.id
		src := a.F
		d.mode = segRecording
		acc, ops := d.acc, d.ops
		for bs := uint32(m); bs != 0; bs &= bs - 1 {
			i := bits.TrailingZeros32(bs)
			ii := idx[i]
			if uint32(ii) >= un {
				d.acc, d.ops = acc, ops
				tc.checkLane("atomic-add", a, i, ii)
			}
			acc = recAccess(acc, base+int64(ii)*4, k64, ds)
			old := src[ii]
			if wd := sv[ii]; uint32(wd>>32) == ep {
				old = math.Float32frombits(uint32(wd))
			}
			sv[ii] = epHi | uint64(math.Float32bits(old+val[i]))
			ops = append(ops, memOp{aid: aid, idx: ii, op: opAddF, fv: val[i]})
		}
		d.acc, d.ops = acc, ops
		tc.countAtomics(n, false, false)
		return
	}
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			tc.checkLane("atomic-add", a, i, idx[i])
			tc.noteAccess(a.Addr(idx[i]), machine.AccPlain)
			if d != nil {
				d.addF(a, idx[i], val[i])
			} else {
				a.F[idx[i]] += val[i]
			}
		}
	}
	tc.countAtomics(n, false, false)
}
