package spmd

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/vec"
)

func newModeEngine(tasks int, mode Exec) *Engine {
	e := New(machine.Intel8(), vec.TargetAVX512x16, tasks)
	e.Exec = mode
	return e
}

// runDisjoint runs a multi-segment body where every task owns a disjoint
// region: gathers, ALU work, scatters, scalar and per-lane atomics, across
// barriers. With no cross-task read-after-write, all three execution modes
// must agree bit-exactly.
func runDisjoint(t *testing.T, mode Exec) (float64, Stats, []int32) {
	t.Helper()
	e := newModeEngine(8, mode)
	a := e.AllocI("data", 8*16)
	deg := e.AllocI("deg", 8*16)
	err := e.Launch(8, func(tc *TaskCtx) {
		base := int32(tc.Index * 16)
		idx := vec.Bin(vec.OpAdd, vec.Iota(), vec.Splat(base), vec.FullMask(16), 16)
		m := vec.FullMask(16)
		for round := 0; round < 4; round++ {
			v := tc.GatherI(a, idx, m, vec.Vec{}, true)
			v = vec.Bin(vec.OpAdd, v, vec.Splat(int32(round+1)), m, tc.Width)
			tc.Op(vec.ClassALU, false)
			tc.ScatterI(a, idx, v, m)
			tc.AtomicAddLanes(deg, idx, vec.Splat(1), m, false)
			tc.ScalarStoreI(deg, base, tc.ScalarLoadI(deg, base)+1)
			tc.Barrier()
		}
	})
	if err != nil {
		t.Fatalf("mode %d: %v", mode, err)
	}
	out := append(append([]int32(nil), a.I...), deg.I...)
	return e.TimeCycles(), e.Stats, out
}

func TestAllModesAgreeOnDisjointWork(t *testing.T) {
	cyc, stats, out := runDisjoint(t, ExecLive)
	for _, mode := range []Exec{ExecDeferred, ExecParallel} {
		c, s, o := runDisjoint(t, mode)
		if c != cyc {
			t.Errorf("mode %d cycles %v != live %v", mode, c, cyc)
		}
		if s != stats {
			t.Errorf("mode %d stats diverge:\n%v\n%v", mode, &s, &stats)
		}
		if !reflect.DeepEqual(o, out) {
			t.Errorf("mode %d outputs diverge from live", mode)
		}
	}
}

// runContended exercises the cross-task conflict paths — a shared contended
// counter, racing per-lane atomic mins and CASes on overlapping locations,
// conflicting scalar stores — where live and deferred semantics legitimately
// differ. The deferred-serial reference and the parallel scheduler must
// still agree bit-exactly with each other.
func runContended(t *testing.T, mode Exec) (float64, Stats, []int32) {
	t.Helper()
	e := newModeEngine(8, mode)
	dist := e.AllocI("dist", 64)
	owner := e.AllocI("owner", 64)
	slots := e.AllocI("slots", 8)
	ctr := e.AllocI("ctr", 1)
	dist.FillI(1 << 30)
	owner.FillI(-1)
	err := e.Launch(8, func(tc *TaskCtx) {
		m := vec.FullMask(16)
		idx := vec.Iota() // every task hits the same 16 locations
		for round := 0; round < 3; round++ {
			val := vec.Splat(int32(100 - 10*tc.Index - round))
			tc.AtomicMinLanes(dist, idx, val, m)
			tc.AtomicCASLanes(owner, idx, vec.Splat(-1), vec.Splat(int32(tc.Index)), m)
			old := tc.AtomicAddScalar(ctr, 0, 1, true)
			tc.ScalarStoreI(slots, int32(tc.Index), old)
			tc.Barrier()
			// Post-barrier: committed state must be merged and identical
			// across tasks; fold it back in so divergence becomes visible.
			v := tc.GatherI(dist, idx, m, vec.Vec{}, true)
			tc.ScatterI(dist, idx, vec.Bin(vec.OpAdd, v, vec.Splat(1), m, tc.Width), m)
			tc.Barrier()
		}
	})
	if err != nil {
		t.Fatalf("mode %d: %v", mode, err)
	}
	out := append([]int32(nil), dist.I...)
	out = append(out, owner.I...)
	out = append(out, slots.I...)
	out = append(out, ctr.I...)
	return e.TimeCycles(), e.Stats, out
}

func TestParallelMatchesDeferredUnderContention(t *testing.T) {
	cyc, stats, out := runContended(t, ExecDeferred)
	for trial := 0; trial < 3; trial++ {
		c, s, o := runContended(t, ExecParallel)
		if c != cyc {
			t.Errorf("trial %d: parallel cycles %v != deferred %v", trial, c, cyc)
		}
		if s != stats {
			t.Errorf("trial %d: stats diverge:\n%v\n%v", trial, &s, &stats)
		}
		if !reflect.DeepEqual(o, out) {
			t.Errorf("trial %d: outputs diverge", trial)
		}
	}
}

// TestDeferredVisibility pins the deferred memory semantics: a task observes
// its own segment writes immediately, other tasks' writes only after the
// barrier, and conflicting stores merge in task order.
func TestDeferredVisibility(t *testing.T) {
	for _, mode := range []Exec{ExecDeferred, ExecParallel} {
		e := newModeEngine(2, mode)
		a := e.AllocI("a", 4)
		err := e.Launch(2, func(tc *TaskCtx) {
			if tc.Index == 0 {
				tc.ScalarStoreI(a, 0, 5)
				if got := tc.ScalarLoadI(a, 0); got != 5 {
					t.Errorf("mode %d: own write invisible: %d", mode, got)
				}
			} else if got := tc.ScalarLoadI(a, 0); got != 0 {
				t.Errorf("mode %d: foreign write leaked pre-barrier: %d", mode, got)
			}
			// Both tasks store to a[1]; task order must decide the winner.
			tc.ScalarStoreI(a, 1, int32(10+tc.Index))
			tc.Barrier()
			if got := tc.ScalarLoadI(a, 0); got != 5 {
				t.Errorf("mode %d: merged write invisible post-barrier: %d", mode, got)
			}
			if got := tc.ScalarLoadI(a, 1); got != 11 {
				t.Errorf("mode %d: conflicting stores merged to %d, want 11 (task order)", mode, got)
			}
		})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
	}
}

// TestLaunchNoBarrierMatchesLaunch: for a barrier-free body the inline fast
// path must be cost- and effect-identical to the general scheduler, in every
// mode.
func TestLaunchNoBarrierMatchesLaunch(t *testing.T) {
	body := func(a *Array) func(*TaskCtx) {
		return func(tc *TaskCtx) {
			base := int32(tc.Index * 16)
			idx := vec.Bin(vec.OpAdd, vec.Iota(), vec.Splat(base), vec.FullMask(16), 16)
			v := tc.GatherI(a, idx, vec.FullMask(16), vec.Vec{}, true)
			v = vec.Bin(vec.OpAdd, v, vec.Splat(7), vec.FullMask(16), tc.Width)
			tc.ScatterI(a, idx, v, vec.FullMask(16))
		}
	}
	for _, mode := range []Exec{ExecLive, ExecDeferred, ExecParallel} {
		e1 := newModeEngine(4, mode)
		a1 := e1.AllocI("a", 64)
		if err := e1.Launch(4, body(a1)); err != nil {
			t.Fatal(err)
		}
		e2 := newModeEngine(4, mode)
		a2 := e2.AllocI("a", 64)
		if err := e2.LaunchNoBarrier(4, body(a2)); err != nil {
			t.Fatal(err)
		}
		if e1.TimeCycles() != e2.TimeCycles() {
			t.Errorf("mode %d: cycles %v (Launch) != %v (LaunchNoBarrier)",
				mode, e1.TimeCycles(), e2.TimeCycles())
		}
		if e1.Stats != e2.Stats {
			t.Errorf("mode %d: stats diverge:\n%v\n%v", mode, &e1.Stats, &e2.Stats)
		}
		if !reflect.DeepEqual(a1.I, a2.I) {
			t.Errorf("mode %d: outputs diverge", mode)
		}
	}
}

// TestBarrierInNoBarrierLaunchFails: calling Barrier from a barrier-free
// launch is a kernel bug that must surface as a typed error, not a hang.
func TestBarrierInNoBarrierLaunchFails(t *testing.T) {
	for _, mode := range []Exec{ExecLive, ExecDeferred} {
		e := newModeEngine(2, mode)
		err := e.LaunchNoBarrier(2, func(tc *TaskCtx) { tc.Barrier() })
		if err == nil {
			t.Fatalf("mode %d: Barrier in LaunchNoBarrier did not fail", mode)
		}
		if !errors.Is(err, fault.ErrKernelPanic) {
			t.Errorf("mode %d: error %v does not match ErrKernelPanic", mode, err)
		}
	}
}

// TestParallelErrorDeterministic: when several tasks fail in the same
// segment, the reported task must be the lowest-index failure, exactly as
// the cooperative sweep would report it.
func TestParallelErrorDeterministic(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		e := newModeEngine(8, ExecParallel)
		a := e.AllocI("a", 4)
		err := e.Launch(8, func(tc *TaskCtx) {
			if tc.Index >= 3 {
				tc.ScalarLoadI(a, 99) // out of bounds
			}
			tc.Barrier()
		})
		if !errors.Is(err, fault.ErrOutOfBounds) {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var be *fault.BoundsError
		if !errors.As(err, &be) {
			t.Fatalf("trial %d: %T", trial, err)
		}
	}
}

// TestDeferredWorklistEquivalence: staged pushes must land in the same
// positions as the live cooperative schedule produces, in all three modes.
// (Exercised through the spmd-level primitives the worklist package uses.)
func TestDeferredFloatDeterminism(t *testing.T) {
	// Float accumulation order is task-major program order in every mode,
	// so sums must be bit-identical, not merely close.
	run := func(mode Exec) []float32 {
		e := newModeEngine(8, mode)
		acc := e.AllocF("acc", 4)
		if err := e.Launch(8, func(tc *TaskCtx) {
			for i := 0; i < 50; i++ {
				tc.AtomicAddFScalar(acc, 0, 0.1*float32(tc.Index+1))
				tc.AtomicAddFLanes(acc,
					vec.Bin(vec.OpAnd, vec.Iota(), vec.Splat(3), vec.FullMask(16), 16),
					vec.SplatF(0.01*float32(i+1)), vec.FullMask(16))
			}
		}); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), acc.F...)
	}
	ref := run(ExecDeferred)
	for trial := 0; trial < 3; trial++ {
		if got := run(ExecParallel); !reflect.DeepEqual(got, ref) {
			t.Fatalf("trial %d: float outputs diverge: %v vs %v", trial, got, ref)
		}
	}
}
