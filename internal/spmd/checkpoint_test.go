package spmd

import (
	"reflect"
	"testing"

	"repro/internal/vec"
)

// chunk runs one launch round that advances every checkpointed quantity:
// array contents (int and float), modeled cycles, stats, cache tags, and the
// engine's iteration span bookkeeping.
func chunk(t *testing.T, e *Engine, a, sum *Array, f *Array, step int32) {
	t.Helper()
	m := vec.FullMask(16)
	err := e.Launch(2, func(tc *TaskCtx) {
		base := int32(tc.Index * 16)
		idx := vec.Bin(vec.OpAdd, vec.Iota(), vec.Splat(base), m, 16)
		v := tc.GatherI(a, idx, m, vec.Vec{}, false)
		v = vec.Bin(vec.OpAdd, v, vec.Splat(step), m, tc.Width)
		tc.Op(vec.ClassALU, false)
		tc.ScatterI(a, idx, v, m)
		fv := tc.GatherF(f, idx, m, vec.FVec{}, false)
		tc.Op(vec.ClassBlend, false)
		tc.ScatterF(f, idx, fv, m)
		tc.AtomicAddScalar(sum, int32(tc.Index), step, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	e.IterTick("loop", int64(step), 16, 64)
	e.IterDone("loop")
}

type engineState struct {
	cycles float64
	stats  Stats
	a, sum []int32
	f      []float32
}

func captureState(e *Engine, a, sum, f *Array) engineState {
	return engineState{
		cycles: e.TimeCycles(),
		stats:  e.Stats,
		a:      append([]int32(nil), a.I...),
		sum:    append([]int32(nil), sum.I...),
		f:      append([]float32(nil), f.F...),
	}
}

// TestCheckpointRestoreRoundTrip pins the recovery contract at the engine
// level: restoring a checkpoint and re-executing the same work must land in a
// state bit-identical — arrays, modeled cycles, full statistics — to a run
// that never deviated.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	for _, mode := range []Exec{ExecLive, ExecDeferred, ExecParallel} {
		run := func(disturb bool) engineState {
			e := newModeEngine(2, mode)
			a := e.AllocI("a", 32)
			sum := e.AllocI("sum", 2)
			f := e.AllocF("f", 32)
			chunk(t, e, a, sum, f, 1)

			var cp Checkpoint
			e.Checkpoint(&cp)
			if !cp.Valid() {
				t.Fatal("checkpoint not valid after Checkpoint")
			}

			if disturb {
				// Divergent work: different step, plus direct corruption.
				chunk(t, e, a, sum, f, 9)
				chunk(t, e, a, sum, f, 5)
				a.I[3] ^= 1 << 20
				e.Restore(&cp)
			}
			chunk(t, e, a, sum, f, 2)
			chunk(t, e, a, sum, f, 3)
			return captureState(e, a, sum, f)
		}
		clean := run(false)
		recovered := run(true)
		if clean.cycles != recovered.cycles {
			t.Errorf("mode %d: cycles diverge: clean %v, recovered %v", mode, clean.cycles, recovered.cycles)
		}
		if !reflect.DeepEqual(clean.stats, recovered.stats) {
			t.Errorf("mode %d: stats diverge:\nclean     %+v\nrecovered %+v", mode, clean.stats, recovered.stats)
		}
		if !reflect.DeepEqual(clean.a, recovered.a) || !reflect.DeepEqual(clean.sum, recovered.sum) ||
			!reflect.DeepEqual(clean.f, recovered.f) {
			t.Errorf("mode %d: array contents diverge after restore + re-execution", mode)
		}
	}
}

// TestCheckpointArrayAccessors covers the dense id-indexed views used by
// invariant validators for last-checkpoint comparisons.
func TestCheckpointArrayAccessors(t *testing.T) {
	e := newTestEngine(1)
	a := e.AllocI("a", 8)
	f := e.AllocF("f", 4)
	for i := range a.I {
		a.I[i] = int32(i * 3)
	}
	for i := range f.F {
		f.F[i] = float32(i) / 2
	}
	var cp Checkpoint
	if cp.Valid() {
		t.Error("zero checkpoint reports valid")
	}
	e.Checkpoint(&cp)
	if got := cp.ArrayI(a.ID()); !reflect.DeepEqual(got, a.I) {
		t.Errorf("ArrayI(%d) = %v, want %v", a.ID(), got, a.I)
	}
	if got := cp.ArrayF(f.ID()); !reflect.DeepEqual(got, f.F) {
		t.Errorf("ArrayF(%d) = %v, want %v", f.ID(), got, f.F)
	}
	if cp.ArrayI(f.ID()) != nil || cp.ArrayF(a.ID()) != nil {
		t.Error("typed accessor returned data for an array of the other type")
	}
	if cp.ArrayI(99) != nil || cp.ArrayI(-1) != nil {
		t.Error("out-of-range id returned data")
	}
	// Snapshot is a copy, not an alias.
	a.I[0] = 42
	if cp.ArrayI(a.ID())[0] == 42 {
		t.Error("checkpoint aliases live array storage")
	}
	cp.Invalidate()
	if cp.Valid() {
		t.Error("checkpoint valid after Invalidate")
	}
}

// TestCheckpointSteadyStateAllocationFree pins the hot-path cost contract:
// once a Checkpoint's buffers have grown to working size, re-checkpointing
// and restoring allocate nothing, so a checkpointing run's allocation profile
// matches a non-checkpointing one after the first snapshot.
func TestCheckpointSteadyStateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is nondeterministic under the race detector")
	}
	e := newModeEngine(2, ExecDeferred)
	a := e.AllocI("a", 256)
	f := e.AllocF("f", 256)
	_ = a
	_ = f
	var cp Checkpoint
	e.Checkpoint(&cp) // warmup: grow all snapshot buffers
	if allocs := testing.AllocsPerRun(100, func() {
		e.Checkpoint(&cp)
		e.Restore(&cp)
	}); allocs != 0 {
		t.Errorf("steady-state checkpoint+restore allocates %.1f objects, want 0", allocs)
	}
}
