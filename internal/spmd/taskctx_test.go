package spmd

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/vec"
)

// runSingle executes body on one task and returns the engine for inspection.
func runSingle(t *testing.T, target vec.Target, body func(tc *TaskCtx)) *Engine {
	t.Helper()
	e := New(machine.Intel8(), target, 1)
	e.Launch(1, body)
	return e
}

func TestGatherFunctionalAndCounted(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
	a := e.AllocI("a", 64)
	for i := range a.I {
		a.I[i] = int32(i * 2)
	}
	var got vec.Vec
	e.Launch(1, func(tc *TaskCtx) {
		got = tc.GatherI(a, vec.Iota(), vec.FullMask(16), vec.Vec{}, true)
	})
	for i := 0; i < 16; i++ {
		if got[i] != int32(i*2) {
			t.Fatalf("lane %d = %d", i, got[i])
		}
	}
	if e.Stats.ByClass[vec.ClassGather] == 0 {
		t.Error("gather not counted")
	}
	if e.Stats.InnerVectorOps != 1 || e.Stats.InnerActiveLanes != 16 {
		t.Errorf("inner accounting = %d/%d", e.Stats.InnerVectorOps, e.Stats.InnerActiveLanes)
	}
	if u := e.Stats.LaneUtilization(16); u != 1.0 {
		t.Errorf("utilization = %v", u)
	}
}

func TestLaneUtilizationPartial(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
	a := e.AllocI("a", 64)
	e.Launch(1, func(tc *TaskCtx) {
		m := vec.FullMask(4) // 4 of 16 lanes
		tc.GatherI(a, vec.Iota(), m, vec.Vec{}, true)
	})
	if u := e.Stats.LaneUtilization(16); u != 0.25 {
		t.Errorf("utilization = %v, want 0.25", u)
	}
}

func TestScatterAndVectorStores(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
	a := e.AllocI("a", 64)
	e.Launch(1, func(tc *TaskCtx) {
		tc.ScatterI(a, vec.Iota(), vec.Splat(9), vec.FullMask(16))
		tc.StoreVecI(a, 32, vec.Splat(5), vec.FullMask(16))
	})
	if a.I[7] != 9 || a.I[40] != 5 {
		t.Errorf("stores wrong: %d %d", a.I[7], a.I[40])
	}
	if e.Stats.ByClass[vec.ClassScatter] == 0 || e.Stats.ByClass[vec.ClassVStore] == 0 {
		t.Error("store classes not counted")
	}
}

func TestPackedStoreCounts(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
	a := e.AllocI("wl", 64)
	var n int
	e.Launch(1, func(tc *TaskCtx) {
		val := vec.Iota()
		m := vec.Mask(0).Set(2).Set(5).Set(11)
		n = tc.PackedStore(a, 10, val, m)
	})
	if n != 3 {
		t.Fatalf("PackedStore returned %d", n)
	}
	if a.I[10] != 2 || a.I[11] != 5 || a.I[12] != 11 {
		t.Errorf("packed = %v", a.I[10:13])
	}
}

func TestScalarLoadStore(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
	a := e.AllocI("a", 8)
	e.Launch(1, func(tc *TaskCtx) {
		tc.ScalarStoreI(a, 3, 77)
		if v := tc.ScalarLoadI(a, 3); v != 77 {
			t.Errorf("scalar load = %d", v)
		}
	})
	if e.Stats.ByClass[vec.ClassScalarLoad] != 1 || e.Stats.ByClass[vec.ClassScalarStore] != 1 {
		t.Error("scalar memory ops not counted")
	}
}

func TestAtomicMinLanes(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
	a := e.AllocI("dist", 8)
	a.FillI(100)
	var improved vec.Mask
	e.Launch(1, func(tc *TaskCtx) {
		idx := vec.FromSlice([]int32{0, 1, 2, 3})
		val := vec.FromSlice([]int32{50, 150, 100, 99})
		improved = tc.AtomicMinLanes(a, idx, val, vec.FullMask(4))
	})
	if !improved.Bit(0) || improved.Bit(1) || improved.Bit(2) || !improved.Bit(3) {
		t.Errorf("improved = %v", improved)
	}
	if a.I[0] != 50 || a.I[1] != 100 || a.I[3] != 99 {
		t.Errorf("dist = %v", a.I[:4])
	}
	if e.Stats.Atomics != 4 {
		t.Errorf("Atomics = %d", e.Stats.Atomics)
	}
}

func TestAtomicCASLanes(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
	a := e.AllocI("lvl", 8)
	a.FillI(-1)
	a.I[2] = 5
	var won vec.Mask
	e.Launch(1, func(tc *TaskCtx) {
		idx := vec.FromSlice([]int32{0, 2, 4})
		won = tc.AtomicCASLanes(a, idx, vec.Splat(-1), vec.Splat(7), vec.FullMask(3))
	})
	if !won.Bit(0) || won.Bit(1) || !won.Bit(2) {
		t.Errorf("won = %v", won)
	}
	if a.I[0] != 7 || a.I[2] != 5 || a.I[4] != 7 {
		t.Errorf("lvl = %v", a.I[:5])
	}
}

func TestAtomicAddLanesContended(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
	tail := e.AllocI("tail", 1)
	var olds vec.Vec
	e.Launch(1, func(tc *TaskCtx) {
		olds = tc.AtomicAddLanesContended(tail, 0, vec.FullMask(4), true)
	})
	// Each lane reserves one slot: old values 0..3, tail ends at 4.
	for i := 0; i < 4; i++ {
		if olds[i] != int32(i) {
			t.Errorf("lane %d old = %d", i, olds[i])
		}
	}
	if tail.I[0] != 4 {
		t.Errorf("tail = %d", tail.I[0])
	}
	if e.Stats.AtomicPushes != 4 {
		t.Errorf("pushes = %d, want 4 (one per lane, unoptimized)", e.Stats.AtomicPushes)
	}
}

func TestAtomicAddFScalar(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
	acc := e.AllocF("acc", 1)
	e.Launch(1, func(tc *TaskCtx) {
		tc.AtomicAddFScalar(acc, 0, 2.5)
		tc.AtomicAddFScalar(acc, 0, 1.5)
	})
	if acc.F[0] != 4.0 {
		t.Errorf("acc = %v", acc.F[0])
	}
	if e.Stats.Atomics != 2 {
		t.Errorf("Atomics = %d, want 2 (reduction + single atomic each)", e.Stats.Atomics)
	}
}

func TestGatherFAndScatterF(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
	a := e.AllocF("rank", 16)
	for i := range a.F {
		a.F[i] = float32(i) / 2
	}
	e.Launch(1, func(tc *TaskCtx) {
		v := tc.GatherF(a, vec.Iota(), vec.FullMask(8), vec.FVec{}, false)
		if v[4] != 2.0 {
			t.Errorf("GatherF lane 4 = %v", v[4])
		}
		tc.ScatterF(a, vec.Iota(), vec.SplatF(9), vec.FullMask(8))
	})
	if a.F[3] != 9 || a.F[8] != 4 {
		t.Errorf("ScatterF result: %v %v", a.F[3], a.F[8])
	}
}

// TestGatherCostExceedsScalarOnIntel verifies the Table VI effect end to
// end: for L1-resident data, per-word gather stalls exceed scalar-load
// stalls on the big OoO core.
func TestGatherCostExceedsScalarOnIntel(t *testing.T) {
	gatherStall := func() float64 {
		e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
		a := e.AllocI("a", 256)
		e.Launch(1, func(tc *TaskCtx) {
			// Warm L1.
			for p := int32(0); p < 256; p += 16 {
				tc.LoadVecI(a, p, vec.FullMask(16), vec.Vec{})
			}
			start := e.TimeCycles()
			_ = start
			tc.comp, tc.stl = costVec{}, costVec{}
			for i := 0; i < 100; i++ {
				tc.GatherI(a, vec.Iota(), vec.FullMask(16), vec.Vec{}, false)
			}
		})
		return e.TimeCycles()
	}
	scalarStall := func() float64 {
		e := New(machine.Intel8(), vec.TargetScalar, 1)
		a := e.AllocI("a", 256)
		e.Launch(1, func(tc *TaskCtx) {
			for p := int32(0); p < 256; p++ {
				tc.ScalarLoadI(a, p)
			}
			tc.comp, tc.stl = costVec{}, costVec{}
			for i := 0; i < 1600; i++ {
				tc.ScalarLoadI(a, int32(i%256))
			}
		})
		return e.TimeCycles()
	}
	// Same number of words loaded (1600); the gather path must be slower.
	if g, s := gatherStall(), scalarStall(); g <= s {
		t.Errorf("gather cycles %v <= scalar cycles %v; Table VI shape violated", g, s)
	}
}

func TestWorkCounter(t *testing.T) {
	e := runSingle(t, vec.TargetAVX512x16, func(tc *TaskCtx) { tc.Work(42) })
	if e.Stats.WorkItems != 42 {
		t.Errorf("WorkItems = %d", e.Stats.WorkItems)
	}
}

func TestLocalAtomicNoHardwareAtomic(t *testing.T) {
	e := runSingle(t, vec.TargetAVX512x16, func(tc *TaskCtx) {
		tc.LocalAtomicLanes(vec.FullMask(16))
	})
	if e.Stats.Atomics != 0 {
		t.Error("local atomics must not issue hardware atomics")
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{Instructions: 10, Atomics: 2, InnerVectorOps: 1, InnerActiveLanes: 8}
	b := Stats{Instructions: 5, AtomicPushes: 3, Launches: 1}
	a.Add(&b)
	if a.Instructions != 15 || a.AtomicPushes != 3 || a.Launches != 1 {
		t.Errorf("Add result: %+v", a)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
	if u := a.LaneUtilization(16); u != 0.5 {
		t.Errorf("utilization = %v", u)
	}
	var zero Stats
	if zero.LaneUtilization(16) != 0 {
		t.Error("zero stats utilization")
	}
}
