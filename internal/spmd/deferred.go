package spmd

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/vec"
)

// Deferred execution splits what a task computes from how its effects and
// costs are ordered, so tasks can run concurrently while modeled time stays
// bit-identical to the serial reference:
//
//   - Every task observes the segment-start committed state plus its own
//     writes (a private pending map). Cross-task writes become visible only
//     at the next barrier — each task behaves like the first task of a
//     cooperative schedule.
//   - Writes and atomics append to a private, ordered operation log; memory
//     accesses append (addr, kind) events to a private trace; worklist
//     pushes stage into private batches.
//   - At every barrier and launch boundary the engine merges task state in
//     task order: batches materialize into the shared worklists
//     (deterministic reservation), traces replay through machine.MemModel
//     (reproducing the serial access order, hence identical hit levels and
//     stalls), operation logs apply, and stat shards fold into Engine.Stats.
//
// Both the cooperative reference scheduler (ExecDeferred) and the parallel
// scheduler (ExecParallel) execute exactly this semantics with exactly this
// merge order, so their modeled cycles, instruction counts and outputs are
// bit-identical by construction.

// pendKey addresses one element of one array in a task's pending-write map.
type pendKey struct {
	a   *Array
	idx int32
}

// Operation-log opcodes. Adds merge as commutative deltas; mins and CASes
// merge against the live value so the committed state transitions exactly
// once per location regardless of how many tasks believe they won.
const (
	opStoreI = uint8(iota)
	opStoreF
	opAddI
	opAddF
	opMinI
	opCASI
)

// memOp is one logged write, applied to the committed arrays at merge time.
type memOp struct {
	a   *Array
	idx int32
	op  uint8
	iv  int32   // value (store/add/min/CAS-new)
	old int32   // CAS expected value
	fv  float32 // float value
}

// Access-trace encoding: one int64 per access.
//
//	committed: addr<<3 | kind<<1 | 0
//	staged:    batch<<34 | offset<<3 | kind<<1 | 1
//
// Staged events reference a push batch whose final position in the shared
// worklist is unknown until materialization; the merge resolves them against
// the batch's committed (array, start) before replaying.
const (
	accStagedBit  = int64(1)
	accKindShift  = 1
	accAddrShift  = 3
	accOffMask    = int64(1)<<31 - 1
	accBatchShift = 34
)

// PushTarget is implemented by worklists: Materialize commits a task's
// staged items at the current tail (growing if permitted) and reports the
// backing array and start index so staged trace events can be resolved.
type PushTarget interface {
	Materialize(items []int32) (*Array, int32, error)
}

// PushBatch accumulates one task's staged pushes to one target within a
// segment. Offsets into the batch are stable; the batch's absolute position
// is assigned at merge time in task order, reproducing the layout a serial
// schedule would produce.
type PushBatch struct {
	target PushTarget
	index  int // position in the task's batch list (trace encoding)
	items  []int32

	// Resolved at materialization.
	arr   *Array
	start int32
}

// Len returns the number of staged items.
func (b *PushBatch) Len() int32 { return int32(len(b.items)) }

// StageMasked appends the active lanes of val in lane order and returns
// their starting offset within the batch.
func (b *PushBatch) StageMasked(val vec.Vec, m vec.Mask, width int) int32 {
	off := int32(len(b.items))
	for i := 0; i < width; i++ {
		if m.Bit(i) {
			b.items = append(b.items, val[i])
		}
	}
	return off
}

// ReserveSlots extends the batch by n zeroed slots and returns their
// starting offset (the deferred analogue of an atomic tail reservation).
func (b *PushBatch) ReserveSlots(n int32) int32 {
	off := int32(len(b.items))
	for j := int32(0); j < n; j++ {
		b.items = append(b.items, 0)
	}
	return off
}

// WriteAt packs the active lanes of val into the batch starting at pos and
// returns the number written, extending the batch if a kernel writes past
// its reservation.
func (b *PushBatch) WriteAt(pos int32, val vec.Vec, m vec.Mask, width int) int32 {
	k := pos
	for i := 0; i < width; i++ {
		if !m.Bit(i) {
			continue
		}
		if int(k) < len(b.items) {
			b.items[k] = val[i]
		} else {
			b.items = append(b.items, val[i])
		}
		k++
	}
	return k - pos
}

// deferredCtx is one task's private effect state for the current segment.
type deferredCtx struct {
	pendI map[pendKey]int32
	pendF map[pendKey]float32
	dirty map[*Array]struct{}

	ops []memOp
	acc []int64

	batches []*PushBatch
	batchOf map[PushTarget]*PushBatch

	serialAtomics float64
}

func newDeferredCtx() *deferredCtx {
	return &deferredCtx{
		pendI:   make(map[pendKey]int32),
		pendF:   make(map[pendKey]float32),
		dirty:   make(map[*Array]struct{}),
		batchOf: make(map[PushTarget]*PushBatch),
	}
}

// reset clears the segment state, keeping allocated capacity.
func (d *deferredCtx) reset() {
	clear(d.pendI)
	clear(d.pendF)
	clear(d.dirty)
	clear(d.batchOf)
	d.ops = d.ops[:0]
	d.acc = d.acc[:0]
	d.batches = d.batches[:0]
	d.serialAtomics = 0
}

// loadI reads one element under the task's view: its own pending write if
// present, the segment-start committed value otherwise.
func (d *deferredCtx) loadI(a *Array, idx int32) int32 {
	if _, ok := d.dirty[a]; ok {
		if v, ok := d.pendI[pendKey{a, idx}]; ok {
			return v
		}
	}
	return a.I[idx]
}

func (d *deferredCtx) loadF(a *Array, idx int32) float32 {
	if _, ok := d.dirty[a]; ok {
		if v, ok := d.pendF[pendKey{a, idx}]; ok {
			return v
		}
	}
	return a.F[idx]
}

func (d *deferredCtx) storeI(a *Array, idx, v int32) {
	d.pendI[pendKey{a, idx}] = v
	d.dirty[a] = struct{}{}
	d.ops = append(d.ops, memOp{a: a, idx: idx, op: opStoreI, iv: v})
}

func (d *deferredCtx) storeF(a *Array, idx int32, v float32) {
	d.pendF[pendKey{a, idx}] = v
	d.dirty[a] = struct{}{}
	d.ops = append(d.ops, memOp{a: a, idx: idx, op: opStoreF, fv: v})
}

func (d *deferredCtx) addI(a *Array, idx, delta int32) int32 {
	old := d.loadI(a, idx)
	d.pendI[pendKey{a, idx}] = old + delta
	d.dirty[a] = struct{}{}
	d.ops = append(d.ops, memOp{a: a, idx: idx, op: opAddI, iv: delta})
	return old
}

func (d *deferredCtx) addF(a *Array, idx int32, delta float32) {
	d.pendF[pendKey{a, idx}] = d.loadF(a, idx) + delta
	d.dirty[a] = struct{}{}
	d.ops = append(d.ops, memOp{a: a, idx: idx, op: opAddF, fv: delta})
}

// minI lowers the task-local view and logs a min to merge against the live
// value. Call only when v improves on loadI's result.
func (d *deferredCtx) minI(a *Array, idx, v int32) {
	d.pendI[pendKey{a, idx}] = v
	d.dirty[a] = struct{}{}
	d.ops = append(d.ops, memOp{a: a, idx: idx, op: opMinI, iv: v})
}

// casI records a compare-and-swap that succeeded under the task's view.
func (d *deferredCtx) casI(a *Array, idx, old, v int32) {
	d.pendI[pendKey{a, idx}] = v
	d.dirty[a] = struct{}{}
	d.ops = append(d.ops, memOp{a: a, idx: idx, op: opCASI, iv: v, old: old})
}

// applyOp commits one logged write. Values were counted at execution time;
// application is functional only.
func applyOp(o *memOp) {
	switch o.op {
	case opStoreI:
		o.a.I[o.idx] = o.iv
	case opStoreF:
		o.a.F[o.idx] = o.fv
	case opAddI:
		o.a.I[o.idx] += o.iv
	case opAddF:
		o.a.F[o.idx] += o.fv
	case opMinI:
		if o.iv < o.a.I[o.idx] {
			o.a.I[o.idx] = o.iv
		}
	case opCASI:
		if o.a.I[o.idx] == o.old {
			o.a.I[o.idx] = o.iv
		}
	}
}

// --- TaskCtx deferred plumbing ---

// Deferred reports whether this task runs with deferred effects (private
// shards merged at barriers). The worklist package branches on it to stage
// pushes instead of mutating shared tails.
func (tc *TaskCtx) Deferred() bool { return tc.def != nil }

// noteAccess accounts one memory access. Live mode pages and probes the
// cache immediately; deferred mode appends a trace event replayed at the
// segment boundary. Both paths cost through machine.ReplayAccess, so stalls
// are identical by construction.
func (tc *TaskCtx) noteAccess(addr int64, kind machine.AccessKind) {
	if d := tc.def; d != nil {
		d.acc = append(d.acc, addr<<accAddrShift|int64(kind)<<accKindShift)
		return
	}
	tc.touchPage(addr)
	tc.addStall(tc.E.Mem.ReplayAccess(tc.core, addr, kind, tc.E.activeThreads))
}

// Batch returns the task's staging batch for the given push target, creating
// it on first use. Creation order is the materialization order within the
// task, mirroring the program order of a serial schedule.
func (tc *TaskCtx) Batch(t PushTarget) *PushBatch {
	d := tc.def
	b := d.batchOf[t]
	if b == nil {
		b = &PushBatch{target: t, index: len(d.batches)}
		d.batchOf[t] = b
		d.batches = append(d.batches, b)
	}
	return b
}

// NoteShared records a cost-only access to a shared scalar location (a
// worklist tail) in the task's trace.
func (tc *TaskCtx) NoteShared(a *Array, idx int32) {
	tc.noteAccess(a.Addr(idx), machine.AccPlain)
}

// NoteStaged records n cost-only accesses to staged batch slots [off,off+n):
// their absolute addresses resolve at materialization.
func (tc *TaskCtx) NoteStaged(b *PushBatch, off, n int32) {
	d := tc.def
	for j := int32(0); j < n; j++ {
		d.acc = append(d.acc,
			int64(b.index)<<accBatchShift|int64(off+j)<<accAddrShift|
				int64(machine.AccPlain)<<accKindShift|accStagedBit)
	}
}

// CountAtomics exposes atomic-instruction accounting to the worklist
// package's deferred push paths.
func (tc *TaskCtx) CountAtomics(n int, contended, push bool) {
	tc.countAtomics(n, contended, push)
}

// --- Engine-side merge ---

// replayAccesses replays one task's trace through the memory model and
// pager, charging exposed stalls to the task.
func (e *Engine) replayAccesses(tc *TaskCtx) {
	d := tc.def
	for _, ev := range d.acc {
		var addr int64
		if ev&accStagedBit != 0 {
			b := d.batches[ev>>accBatchShift]
			addr = b.arr.Addr(b.start + int32((ev>>accAddrShift)&accOffMask))
		} else {
			addr = ev >> accAddrShift
		}
		tc.touchPage(addr)
		kind := machine.AccessKind((ev >> accKindShift) & 3)
		tc.addStall(e.Mem.ReplayAccess(tc.core, addr, kind, e.activeThreads))
	}
}

// mergeSegment commits all tasks' deferred state in task order: batches
// materialize (deterministic reservation), traces replay (deterministic
// cache evolution), operation logs apply, stat shards and serialized-atomic
// floors fold in. A materialization failure (worklist overflow on a
// non-growable list) aborts the merge with a task-attributed typed error.
func (e *Engine) mergeSegment(tcs []*TaskCtx) error {
	for _, tc := range tcs {
		d := tc.def
		if d == nil {
			continue
		}
		for _, b := range d.batches {
			arr, start, err := b.target.Materialize(b.items)
			if err != nil {
				return fmt.Errorf("task %d (kernel %q, iteration %d): %w",
					tc.Index, e.phaseName(), e.iter.Load(), err)
			}
			b.arr, b.start = arr, start
		}
		e.replayAccesses(tc)
		for i := range d.ops {
			applyOp(&d.ops[i])
		}
		e.Stats.Add(&tc.shard)
		tc.shard = Stats{}
		e.segSerialAtomics += d.serialAtomics
		d.reset()
	}
	return nil
}
