package spmd

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/vec"
)

// Deferred execution splits what a task computes from how its effects and
// costs are ordered, so tasks can run concurrently while modeled time stays
// bit-identical to the serial reference:
//
//   - Every task observes the segment-start committed state plus its own
//     writes (a private epoch-stamped shadow of each array it wrote).
//     Cross-task writes become visible only at the next barrier — each task
//     behaves like the first task of a cooperative schedule.
//   - Writes and atomics append to a private, ordered operation log; memory
//     accesses append (addr, kind) events to a private trace; worklist
//     pushes stage into private batches.
//   - At every barrier and launch boundary the engine merges task state in
//     task order: batches materialize into the shared worklists
//     (deterministic reservation), traces replay through machine.MemModel
//     (reproducing the serial access order, hence identical hit levels and
//     stalls), operation logs apply, and stat shards fold into Engine.Stats.
//
// Both the cooperative reference scheduler (ExecDeferred) and the parallel
// scheduler (ExecParallel) execute exactly this semantics with exactly this
// merge order, so their modeled cycles, instruction counts and outputs are
// bit-identical by construction.
//
// The per-lane hot path (loadI/storeI/noteAccess/Batch) is allocation-free
// and hash-free in steady state: pending writes live in direct-indexed
// shadow buffers invalidated by an epoch bump, push batches resolve through
// a dense-id table, and all segment buffers are pooled with capacity
// carried across segments and launches (Engine.defPool).

// shadow is one task's pending-write view of one array: a direct-indexed
// value buffer plus a per-element epoch stamp. An element holds a pending
// write iff stamp[idx] == epoch, so clearing the whole shadow at a segment
// boundary is a single counter bump — no per-element work, no map.
type shadow struct {
	arr   *Array
	stamp []uint32
	valI  []int32   // non-nil iff arr.I is
	valF  []float32 // non-nil iff arr.F is
	epoch uint32
}

// clear invalidates every pending element in O(1) by advancing the epoch.
// On the (astronomically rare) wrap to 0 the stamps are rewritten so stale
// entries can never alias a future epoch.
func (sh *shadow) clear() {
	sh.epoch++
	if sh.epoch == 0 {
		for i := range sh.stamp {
			sh.stamp[i] = 0
		}
		sh.epoch = 1
	}
}

// Operation-log opcodes. Adds merge as commutative deltas; mins and CASes
// merge against the live value so the committed state transitions exactly
// once per location regardless of how many tasks believe they won.
const (
	opStoreI = uint8(iota)
	opStoreF
	opAddI
	opAddF
	opMinI
	opCASI
)

// memOp is one logged write, applied to the committed arrays at merge time.
type memOp struct {
	a   *Array
	idx int32
	op  uint8
	iv  int32   // value (store/add/min/CAS-new)
	old int32   // CAS expected value
	fv  float32 // float value
}

// Access-trace encoding: one int64 per event, carrying a repeat count so a
// run of accesses to one cache line (or one staged-slot range) costs one
// trace word instead of one per lane:
//
//	committed: rep<<56 | addr<<3 | kind<<1 | 0
//	staged:    rep<<56 | batch<<34 | offset<<3 | kind<<1 | 1
//
// rep is the number of extra repeats beyond the first access (0..127, the
// sign bit stays clear). A committed word with rep > 0 encodes rep+1
// back-to-back accesses of the same kind to the same line: replay probes the
// hierarchy once and accounts the repeats as guaranteed L1 hits
// (machine.ReplayRepeat), so replay work scales with touched lines, not
// lanes. A staged word with rep > 0 encodes rep+1 consecutive batch slots;
// their absolute addresses resolve at materialization, so replay expands
// them individually.
const (
	accStagedBit  = int64(1)
	accKindShift  = 1
	accAddrShift  = 3
	accOffMask    = int64(1)<<31 - 1
	accBatchShift = 34
	accBatchMask  = int64(1)<<22 - 1
	accAddrMask   = int64(1)<<53 - 1
	accCountShift = 56
	accMaxCount   = int64(127)
)

// PushTarget is implemented by worklists: Materialize commits a task's
// staged items at the current tail (growing if permitted) and reports the
// backing array and start index so staged trace events can be resolved.
// PushID returns the target's dense engine-assigned id
// (Engine.RegisterPushTarget), which tasks use to index their batch table
// without hashing.
type PushTarget interface {
	Materialize(items []int32) (*Array, int32, error)
	PushID() int32
}

// PushBatch accumulates one task's staged pushes to one target within a
// segment. Offsets into the batch are stable; the batch's absolute position
// is assigned at merge time in task order, reproducing the layout a serial
// schedule would produce. Batches are pooled per task context: reset returns
// them to a free list with item capacity intact.
type PushBatch struct {
	target PushTarget
	id     int32 // dense PushTarget id (batchTab slot)
	index  int   // position in the task's batch list (trace encoding)
	items  []int32

	// Resolved at materialization.
	arr   *Array
	start int32
}

// Len returns the number of staged items.
func (b *PushBatch) Len() int32 { return int32(len(b.items)) }

// StageMasked appends the active lanes of val in lane order and returns
// their starting offset within the batch.
func (b *PushBatch) StageMasked(val vec.Vec, m vec.Mask, width int) int32 {
	off := int32(len(b.items))
	for i := 0; i < width; i++ {
		if m.Bit(i) {
			b.items = append(b.items, val[i])
		}
	}
	return off
}

// ReserveSlots extends the batch by n zeroed slots and returns their
// starting offset (the deferred analogue of an atomic tail reservation).
func (b *PushBatch) ReserveSlots(n int32) int32 {
	off := int32(len(b.items))
	for j := int32(0); j < n; j++ {
		b.items = append(b.items, 0)
	}
	return off
}

// WriteAt packs the active lanes of val into the batch starting at pos and
// returns the number written, extending the batch if a kernel writes past
// its reservation.
func (b *PushBatch) WriteAt(pos int32, val vec.Vec, m vec.Mask, width int) int32 {
	k := pos
	for i := 0; i < width; i++ {
		if !m.Bit(i) {
			continue
		}
		if int(k) < len(b.items) {
			b.items[k] = val[i]
		} else {
			b.items = append(b.items, val[i])
		}
		k++
	}
	return k - pos
}

// deferredCtx is one task's private effect state for the current segment.
// Contexts are pooled on the engine across launches, so the shadow buffers,
// logs and batches below keep their capacity for the lifetime of a kernel
// pipeline.
type deferredCtx struct {
	// shadows holds this task's pending-write buffers, direct-indexed by
	// Array id (engine-assigned, dense). Entries persist across segments
	// and launches; a segment boundary only bumps each shadow's epoch.
	shadows []*shadow

	ops []memOp
	acc []int64

	batches  []*PushBatch
	batchTab []*PushBatch // direct-indexed by PushTarget id
	freeB    []*PushBatch

	// dedupShift enables line-level trace compression when non-zero: two
	// consecutive accesses with equal addr>>dedupShift share a cache line,
	// so the second is recorded as a repeat. Zero (no compression) when a
	// pager is attached, because page-residency bookkeeping needs every
	// access replayed at its own address.
	dedupShift uint

	serialAtomics float64

	// phLog records this task's phase transitions during the segment when
	// profiling is on; the profiler folds and clears it at the merge
	// boundary. Capacity persists across segments via the pool.
	phLog []phaseEntry

	// gen is the engine reuse generation this context's dense-id-keyed
	// state was built under (see Engine.gen / Engine.ResetAll).
	gen uint64
}

// dropLayout discards the context's layout-dependent state: shadow buffers
// and the batch table, both direct-indexed by dense engine-assigned ids that
// a reused engine reissues from 0. Called on first acquisition after an
// Engine.ResetAll; layout-independent capacity (ops, traces, pooled batch
// item slices) survives. Stale pointers are nilled before truncation so they
// can never resurface through a later in-place append over the same backing
// array.
func (d *deferredCtx) dropLayout() {
	for i := range d.shadows {
		d.shadows[i] = nil
	}
	d.shadows = d.shadows[:0]
	for i := range d.batchTab {
		d.batchTab[i] = nil
	}
	d.batchTab = d.batchTab[:0]
}

// shadowFor returns the task's shadow for a, creating it lazily sized to the
// array. Array ids are dense per engine, so the lookup is a slice index.
func (d *deferredCtx) shadowFor(a *Array) *shadow {
	id := int(a.id)
	if id >= len(d.shadows) {
		d.shadows = append(d.shadows, make([]*shadow, id+1-len(d.shadows))...)
	}
	sh := d.shadows[id]
	if sh == nil {
		sh = &shadow{arr: a, stamp: make([]uint32, a.Len()), epoch: 1}
		if a.I != nil {
			sh.valI = make([]int32, a.Len())
		} else {
			sh.valF = make([]float32, a.Len())
		}
		d.shadows[id] = sh
	} else if sh.arr != a {
		// Ids are engine-scoped; a collision means an array from a foreign
		// engine reached this engine's launch.
		panic(fmt.Sprintf("spmd: array %q does not belong to this engine", a.Name))
	}
	return sh
}

// reset clears the segment state, keeping allocated capacity: shadows are
// invalidated by epoch bumps and batches return to the free list.
func (d *deferredCtx) reset() {
	for _, sh := range d.shadows {
		if sh != nil {
			sh.clear()
		}
	}
	for _, b := range d.batches {
		d.batchTab[b.id] = nil
		b.target = nil
		b.arr = nil
		b.items = b.items[:0]
		d.freeB = append(d.freeB, b)
	}
	d.batches = d.batches[:0]
	d.ops = d.ops[:0]
	d.acc = d.acc[:0]
	d.serialAtomics = 0
	d.phLog = d.phLog[:0]
}

// loadI reads one element under the task's view: its own pending write if
// present, the segment-start committed value otherwise. The lookup is two
// array indexes and an epoch compare — no hashing, no allocation.
func (d *deferredCtx) loadI(a *Array, idx int32) int32 {
	if id := int(a.id); id < len(d.shadows) {
		if sh := d.shadows[id]; sh != nil && sh.stamp[idx] == sh.epoch {
			return sh.valI[idx]
		}
	}
	return a.I[idx]
}

func (d *deferredCtx) loadF(a *Array, idx int32) float32 {
	if id := int(a.id); id < len(d.shadows) {
		if sh := d.shadows[id]; sh != nil && sh.stamp[idx] == sh.epoch {
			return sh.valF[idx]
		}
	}
	return a.F[idx]
}

func (d *deferredCtx) storeI(a *Array, idx, v int32) {
	sh := d.shadowFor(a)
	sh.stamp[idx] = sh.epoch
	sh.valI[idx] = v
	d.ops = append(d.ops, memOp{a: a, idx: idx, op: opStoreI, iv: v})
}

func (d *deferredCtx) storeF(a *Array, idx int32, v float32) {
	sh := d.shadowFor(a)
	sh.stamp[idx] = sh.epoch
	sh.valF[idx] = v
	d.ops = append(d.ops, memOp{a: a, idx: idx, op: opStoreF, fv: v})
}

func (d *deferredCtx) addI(a *Array, idx, delta int32) int32 {
	sh := d.shadowFor(a)
	old := a.I[idx]
	if sh.stamp[idx] == sh.epoch {
		old = sh.valI[idx]
	}
	sh.stamp[idx] = sh.epoch
	sh.valI[idx] = old + delta
	d.ops = append(d.ops, memOp{a: a, idx: idx, op: opAddI, iv: delta})
	return old
}

func (d *deferredCtx) addF(a *Array, idx int32, delta float32) {
	sh := d.shadowFor(a)
	old := a.F[idx]
	if sh.stamp[idx] == sh.epoch {
		old = sh.valF[idx]
	}
	sh.stamp[idx] = sh.epoch
	sh.valF[idx] = old + delta
	d.ops = append(d.ops, memOp{a: a, idx: idx, op: opAddF, fv: delta})
}

// minI lowers the task-local view and logs a min to merge against the live
// value. Call only when v improves on loadI's result.
func (d *deferredCtx) minI(a *Array, idx, v int32) {
	sh := d.shadowFor(a)
	sh.stamp[idx] = sh.epoch
	sh.valI[idx] = v
	d.ops = append(d.ops, memOp{a: a, idx: idx, op: opMinI, iv: v})
}

// casI records a compare-and-swap that succeeded under the task's view.
func (d *deferredCtx) casI(a *Array, idx, old, v int32) {
	sh := d.shadowFor(a)
	sh.stamp[idx] = sh.epoch
	sh.valI[idx] = v
	d.ops = append(d.ops, memOp{a: a, idx: idx, op: opCASI, iv: v, old: old})
}

// applyOp commits one logged write. Values were counted at execution time;
// application is functional only.
func applyOp(o *memOp) {
	switch o.op {
	case opStoreI:
		o.a.I[o.idx] = o.iv
	case opStoreF:
		o.a.F[o.idx] = o.fv
	case opAddI:
		o.a.I[o.idx] += o.iv
	case opAddF:
		o.a.F[o.idx] += o.fv
	case opMinI:
		if o.iv < o.a.I[o.idx] {
			o.a.I[o.idx] = o.iv
		}
	case opCASI:
		if o.a.I[o.idx] == o.old {
			o.a.I[o.idx] = o.iv
		}
	}
}

// --- TaskCtx deferred plumbing ---

// Deferred reports whether this task runs with deferred effects (private
// shards merged at barriers). The worklist package branches on it to stage
// pushes instead of mutating shared tails.
func (tc *TaskCtx) Deferred() bool { return tc.def != nil }

// noteAccess accounts one memory access. Live mode pages and probes the
// cache immediately; deferred mode appends a trace event replayed at the
// segment boundary — folding the access into the previous trace word when
// both hit the same cache line, so gather/scatter runs over hot lines cost
// one word, not one per lane. Both paths cost through machine.ReplayAccess,
// so stalls are identical by construction.
func (tc *TaskCtx) noteAccess(addr int64, kind machine.AccessKind) {
	if d := tc.def; d != nil {
		if s := d.dedupShift; s != 0 {
			if n := len(d.acc); n > 0 {
				last := d.acc[n-1]
				if last&accStagedBit == 0 &&
					(last>>accKindShift)&3 == int64(kind) &&
					last>>accCountShift < accMaxCount &&
					((last>>accAddrShift)&accAddrMask)>>s == addr>>s {
					d.acc[n-1] = last + 1<<accCountShift
					return
				}
			}
		}
		d.acc = append(d.acc, addr<<accAddrShift|int64(kind)<<accKindShift)
		return
	}
	tc.touchPage(addr)
	tc.addStall(tc.E.Mem.ReplayAccess(tc.core, addr, kind, tc.E.activeThreads))
}

// Batch returns the task's staging batch for the given push target, creating
// it on first use. Creation order is the materialization order within the
// task, mirroring the program order of a serial schedule. Targets resolve
// through a dense-id table; batch objects are pooled across segments.
func (tc *TaskCtx) Batch(t PushTarget) *PushBatch {
	d := tc.def
	id := int(t.PushID())
	if id < len(d.batchTab) {
		if b := d.batchTab[id]; b != nil {
			return b
		}
	} else {
		d.batchTab = append(d.batchTab, make([]*PushBatch, id+1-len(d.batchTab))...)
	}
	var b *PushBatch
	if n := len(d.freeB); n > 0 {
		b = d.freeB[n-1]
		d.freeB = d.freeB[:n-1]
	} else {
		b = &PushBatch{}
	}
	b.target, b.id, b.index = t, int32(id), len(d.batches)
	d.batchTab[id] = b
	d.batches = append(d.batches, b)
	return b
}

// NoteShared records a cost-only access to a shared scalar location (a
// worklist tail) in the task's trace.
func (tc *TaskCtx) NoteShared(a *Array, idx int32) {
	tc.noteAccess(a.Addr(idx), machine.AccPlain)
}

// NoteStaged records n cost-only accesses to staged batch slots [off,off+n):
// their absolute addresses resolve at materialization. Consecutive slots
// pack into run-length trace words.
func (tc *TaskCtx) NoteStaged(b *PushBatch, off, n int32) {
	d := tc.def
	for n > 0 {
		c := int64(n) - 1
		if c > accMaxCount {
			c = accMaxCount
		}
		d.acc = append(d.acc,
			c<<accCountShift|int64(b.index)<<accBatchShift|
				int64(off)<<accAddrShift|
				int64(machine.AccPlain)<<accKindShift|accStagedBit)
		off += int32(c) + 1
		n -= int32(c) + 1
	}
}

// CountAtomics exposes atomic-instruction accounting to the worklist
// package's deferred push paths.
func (tc *TaskCtx) CountAtomics(n int, contended, push bool) {
	tc.countAtomics(n, contended, push)
}

// --- Engine-side merge ---

// replayAccesses replays one task's trace through the memory model and
// pager, charging exposed stalls to the task. A committed word's repeats are
// guaranteed L1 hits (the first access of the run installed the line and
// nothing intervened), so they account through machine.ReplayRepeat without
// re-probing; stalls still accumulate per access to keep the float sum
// bit-identical to an uncompressed replay.
func (e *Engine) replayAccesses(tc *TaskCtx) {
	d := tc.def
	for _, ev := range d.acc {
		kind := machine.AccessKind((ev >> accKindShift) & 3)
		rep := int(ev >> accCountShift)
		if ev&accStagedBit != 0 {
			b := d.batches[(ev>>accBatchShift)&accBatchMask]
			off := int32((ev >> accAddrShift) & accOffMask)
			for j := int32(0); j <= int32(rep); j++ {
				addr := b.arr.Addr(b.start + off + j)
				tc.touchPage(addr)
				tc.addStall(e.Mem.ReplayAccess(tc.core, addr, kind, e.activeThreads))
			}
			continue
		}
		addr := (ev >> accAddrShift) & accAddrMask
		tc.touchPage(addr)
		tc.addStall(e.Mem.ReplayAccess(tc.core, addr, kind, e.activeThreads))
		if rep > 0 {
			c := e.Mem.ReplayRepeat(kind, e.activeThreads, rep)
			if c != 0 {
				for j := 0; j < rep; j++ {
					tc.addStall(c)
				}
			}
		}
	}
}

// mergeSegment commits all tasks' deferred state in task order: batches
// materialize (deterministic reservation), traces replay (deterministic
// cache evolution), operation logs apply, stat shards and serialized-atomic
// floors fold in. A materialization failure (worklist overflow on a
// non-growable list) aborts the merge with a task-attributed typed error.
func (e *Engine) mergeSegment(tcs []*TaskCtx) error {
	for _, tc := range tcs {
		d := tc.def
		if d == nil {
			continue
		}
		for _, b := range d.batches {
			arr, start, err := b.target.Materialize(b.items)
			if err != nil {
				return fmt.Errorf("task %d (kernel %q, iteration %d): %w",
					tc.Index, e.phaseName(), e.iter.Load(), err)
			}
			b.arr, b.start = arr, start
		}
		e.replayAccesses(tc)
		for i := range d.ops {
			applyOp(&d.ops[i])
		}
		if e.prof != nil {
			e.prof.foldTask(e, tc)
		}
		e.Stats.Add(&tc.shard)
		tc.shard = Stats{}
		e.segSerialAtomics += d.serialAtomics
		d.reset()
	}
	return nil
}
