package spmd

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/vec"
)

// Deferred execution splits what a task computes from how its effects and
// costs are ordered, so tasks can run concurrently while modeled time stays
// bit-identical to the serial reference:
//
//   - Every task observes the segment-start committed state plus its own
//     writes (a private epoch-stamped shadow of each array it wrote).
//     Cross-task writes become visible only at the next barrier — each task
//     behaves like the first task of a cooperative schedule.
//   - Writes and atomics append to a private, ordered operation log; memory
//     accesses append (addr, kind) events to a private trace; worklist
//     pushes stage into private batches.
//   - At every barrier and launch boundary the engine merges task state in
//     task order: batches materialize into the shared worklists
//     (deterministic reservation), traces replay through machine.MemModel
//     (reproducing the serial access order, hence identical hit levels and
//     stalls), operation logs apply, and stat shards fold into Engine.Stats.
//
// Both the cooperative reference scheduler (ExecDeferred) and the parallel
// scheduler (ExecParallel) execute exactly this semantics with exactly this
// merge order, so their modeled cycles, instruction counts and outputs are
// bit-identical by construction.
//
// The per-lane hot path (loadI/storeI/noteAccess/Batch) is allocation-free
// and hash-free in steady state: pending writes live in direct-indexed
// shadow buffers invalidated by an epoch bump, push batches resolve through
// a dense-id table, and all segment buffers are pooled with capacity
// carried across segments and launches (Engine.defPool).

// shadow is one task's pending-write view of one array: a direct-indexed
// buffer of packed (epoch stamp, value bits) words. An element holds a
// pending write iff sv[idx]>>32 == epoch, so clearing the whole shadow at a
// segment boundary is a single counter bump — no per-element work, no map —
// and a lookup or store touches ONE cache line per element instead of the
// two a split stamp/value pair would cost (the deferred write path is the
// hottest loop in the whole cost model). Value bits hold the int32 directly
// or the float32's IEEE bits; the array's kind decides the interpretation.
type shadow struct {
	arr   *Array
	sv    []uint64 // stamp<<32 | value bits
	epoch uint32
}

// clear invalidates every pending element in O(1) by advancing the epoch.
// On the (astronomically rare) wrap to 0 the packed words are rewritten so
// stale stamps can never alias a future epoch.
func (sh *shadow) clear() {
	sh.epoch++
	if sh.epoch == 0 {
		for i := range sh.sv {
			sh.sv[i] = 0
		}
		sh.epoch = 1
	}
}

// Operation-log opcodes. Adds merge as commutative deltas; mins and CASes
// merge against the live value so the committed state transitions exactly
// once per location regardless of how many tasks believe they won.
const (
	opStoreI = uint8(iota)
	opStoreF
	opAddI
	opAddF
	opMinI
	opCASI
)

// memOp is one logged write, applied to the committed arrays at merge time.
// The array is carried as its dense engine-assigned id rather than a
// pointer: the ops log is the largest per-segment stream the deferred path
// appends to, and a pointer field would drag a GC write barrier into every
// store/add/min/CAS on the hot path (and pad the struct to 32 bytes).
type memOp struct {
	idx int32
	iv  int32   // value (store/add/min/CAS-new)
	old int32   // CAS expected value
	fv  float32 // float value
	aid int32   // dense Array id (Engine.arrays index)
	op  uint8
}

// Access-trace encoding: one int64 per event, carrying a repeat count so a
// run of accesses to one cache line (or one staged-slot range) costs one
// trace word instead of one per lane:
//
//	committed: rep<<56 | addr<<3 | kind<<1 | 0
//	staged:    rep<<56 | batch<<34 | offset<<3 | kind<<1 | 1
//
// rep is the number of extra repeats beyond the first access (0..127, the
// sign bit stays clear). A committed word with rep > 0 encodes rep+1
// back-to-back accesses of the same kind to the same line: replay probes the
// hierarchy once and accounts the repeats as guaranteed L1 hits
// (machine.ReplayRepeat), so replay work scales with touched lines, not
// lanes. A staged word with rep > 0 encodes rep+1 consecutive batch slots;
// their absolute addresses resolve at materialization, so replay expands
// them individually.
const (
	accStagedBit  = int64(1)
	accKindShift  = 1
	accAddrShift  = 3
	accOffMask    = int64(1)<<31 - 1
	accBatchShift = 34
	accBatchMask  = int64(1)<<22 - 1
	accAddrMask   = int64(1)<<53 - 1
	accCountShift = 56
	accMaxCount   = int64(127)
)

// PushTarget is implemented by worklists: Materialize commits a task's
// staged items at the current tail (growing if permitted) and reports the
// backing array and start index so staged trace events can be resolved.
// PushID returns the target's dense engine-assigned id
// (Engine.RegisterPushTarget), which tasks use to index their batch table
// without hashing.
type PushTarget interface {
	Materialize(items []int32) (*Array, int32, error)
	PushID() int32
}

// PushBatch accumulates one task's staged pushes to one target within a
// segment. Offsets into the batch are stable; the batch's absolute position
// is assigned at merge time in task order, reproducing the layout a serial
// schedule would produce. Batches are pooled per task context: reset returns
// them to a free list with item capacity intact.
type PushBatch struct {
	target PushTarget
	id     int32 // dense PushTarget id (batchTab slot)
	index  int   // position in the task's batch list (trace encoding)
	items  []int32

	// Resolved at materialization.
	arr   *Array
	start int32
}

// Len returns the number of staged items.
func (b *PushBatch) Len() int32 { return int32(len(b.items)) }

// StageMasked appends the active lanes of val in lane order and returns
// their starting offset within the batch.
func (b *PushBatch) StageMasked(val vec.Vec, m vec.Mask, width int) int32 {
	off := int32(len(b.items))
	for i := 0; i < width; i++ {
		if m.Bit(i) {
			b.items = append(b.items, val[i])
		}
	}
	return off
}

// ReserveSlots extends the batch by n zeroed slots and returns their
// starting offset (the deferred analogue of an atomic tail reservation).
func (b *PushBatch) ReserveSlots(n int32) int32 {
	off := int32(len(b.items))
	for j := int32(0); j < n; j++ {
		b.items = append(b.items, 0)
	}
	return off
}

// WriteAt packs the active lanes of val into the batch starting at pos and
// returns the number written, extending the batch if a kernel writes past
// its reservation.
func (b *PushBatch) WriteAt(pos int32, val vec.Vec, m vec.Mask, width int) int32 {
	k := pos
	for i := 0; i < width; i++ {
		if !m.Bit(i) {
			continue
		}
		if int(k) < len(b.items) {
			b.items[k] = val[i]
		} else {
			b.items = append(b.items, val[i])
		}
		k++
	}
	return k - pos
}

// Segment costing modes. A segment starts undecided. The driver may mark it
// stage-free (MarkStageFree) before its first access: stage-free cooperative
// segments probe the memory hierarchy immediately during execution — tasks
// run serially in task order, so the probe order is exactly the order a
// trace replay would produce — and record only a packed cost byte per access
// so the stall sum folds at the merge boundary in the same float order a
// replay would use. Any access before a mark locks the segment into
// recording mode, and parallel launches always record: concurrent tasks
// cannot touch the shared hierarchy mid-segment.
const (
	segUndecided = uint8(iota)
	segRecording
	segImmediate
)

// The packed cost byte is kind<<2|level; this trips if the level count ever
// outgrows the two bits the encoding gives it.
var _ = [4]struct{}{}[machine.NumLevels-1]

// deferredCtx is one task's private effect state for the current segment.
// Contexts are pooled on the engine across launches, so the shadow buffers,
// logs and batches below keep their capacity for the lifetime of a kernel
// pipeline.
type deferredCtx struct {
	// shadows holds this task's pending-write buffers, direct-indexed by
	// Array id (engine-assigned, dense). Entries persist across segments
	// and launches; a segment boundary only bumps each shadow's epoch.
	shadows []*shadow

	ops []memOp
	acc []int64

	// mode is the segment's costing mode (segUndecided / segRecording /
	// segImmediate); costs is the stage-free segment's packed trace — one
	// kind*NumLevels+level byte per access, probed at execution time and
	// folded through Engine.stallFlat at the merge boundary.
	mode  uint8
	costs []byte

	batches  []*PushBatch
	batchTab []*PushBatch // direct-indexed by PushTarget id
	freeB    []*PushBatch

	// lastA/lastSh memoize the most recent shadowFor resolution. Kernel
	// inner loops hammer one array across consecutive lanes and ops, so the
	// common case collapses to a single pointer compare.
	lastA  *Array
	lastSh *shadow

	// dedupShift enables line-level trace compression when non-zero: two
	// consecutive accesses with equal addr>>dedupShift share a cache line,
	// so the second is recorded as a repeat. Zero (no compression) when a
	// pager is attached, because page-residency bookkeeping needs every
	// access replayed at its own address.
	dedupShift uint

	serialAtomics float64

	// phLog records this task's phase transitions during the segment; the
	// merge boundary replays it through the attribution cursor (and the
	// profiler, when enabled) and reset clears it. Capacity persists across
	// segments via the pool.
	phLog []phaseEntry

	// gen is the engine reuse generation this context's dense-id-keyed
	// state was built under (see Engine.gen / Engine.ResetAll).
	gen uint64
}

// dropLayout discards the context's layout-dependent state: shadow buffers
// and the batch table, both direct-indexed by dense engine-assigned ids that
// a reused engine reissues from 0. Called on first acquisition after an
// Engine.ResetAll; layout-independent capacity (ops, traces, pooled batch
// item slices) survives. Stale pointers are nilled before truncation so they
// can never resurface through a later in-place append over the same backing
// array.
func (d *deferredCtx) dropLayout() {
	d.lastA, d.lastSh = nil, nil
	for i := range d.shadows {
		d.shadows[i] = nil
	}
	d.shadows = d.shadows[:0]
	for i := range d.batchTab {
		d.batchTab[i] = nil
	}
	d.batchTab = d.batchTab[:0]
}

// shadowFor returns the task's shadow for a, creating it lazily sized to the
// array. Array ids are dense per engine, so the slow path is a slice index;
// the fast path is one pointer compare against the last resolution.
func (d *deferredCtx) shadowFor(a *Array) *shadow {
	if a == d.lastA {
		return d.lastSh
	}
	id := int(a.id)
	if id >= len(d.shadows) {
		d.shadows = append(d.shadows, make([]*shadow, id+1-len(d.shadows))...)
	}
	sh := d.shadows[id]
	if sh == nil {
		sh = &shadow{arr: a, sv: make([]uint64, a.Len()), epoch: 1}
		d.shadows[id] = sh
	} else if sh.arr != a {
		// Ids are engine-scoped; a collision means an array from a foreign
		// engine reached this engine's launch.
		panic(fmt.Sprintf("spmd: array %q does not belong to this engine", a.Name))
	}
	d.lastA, d.lastSh = a, sh
	return sh
}

// reset clears the segment state, keeping allocated capacity: shadows are
// invalidated by epoch bumps and batches return to the free list.
func (d *deferredCtx) reset() {
	for _, sh := range d.shadows {
		if sh != nil {
			sh.clear()
		}
	}
	for _, b := range d.batches {
		d.batchTab[b.id] = nil
		b.target = nil
		b.arr = nil
		b.items = b.items[:0]
		d.freeB = append(d.freeB, b)
	}
	d.batches = d.batches[:0]
	d.ops = d.ops[:0]
	d.acc = d.acc[:0]
	d.mode = segUndecided
	d.costs = d.costs[:0]
	d.serialAtomics = 0
	d.phLog = d.phLog[:0]
}

// loadI reads one element under the task's view: its own pending write if
// present, the segment-start committed value otherwise. The lookup is one
// packed-word read and an epoch compare — no hashing, no allocation.
func (d *deferredCtx) loadI(a *Array, idx int32) int32 {
	if id := int(a.id); id < len(d.shadows) {
		if sh := d.shadows[id]; sh != nil {
			if w := sh.sv[idx]; uint32(w>>32) == sh.epoch {
				return int32(uint32(w))
			}
		}
	}
	return a.I[idx]
}

func (d *deferredCtx) loadF(a *Array, idx int32) float32 {
	if id := int(a.id); id < len(d.shadows) {
		if sh := d.shadows[id]; sh != nil {
			if w := sh.sv[idx]; uint32(w>>32) == sh.epoch {
				return math.Float32frombits(uint32(w))
			}
		}
	}
	return a.F[idx]
}

func (d *deferredCtx) storeI(a *Array, idx, v int32) {
	sh := d.shadowFor(a)
	sh.sv[idx] = uint64(sh.epoch)<<32 | uint64(uint32(v))
	d.ops = append(d.ops, memOp{aid: a.id, idx: idx, op: opStoreI, iv: v})
}

func (d *deferredCtx) storeF(a *Array, idx int32, v float32) {
	sh := d.shadowFor(a)
	sh.sv[idx] = uint64(sh.epoch)<<32 | uint64(math.Float32bits(v))
	d.ops = append(d.ops, memOp{aid: a.id, idx: idx, op: opStoreF, fv: v})
}

func (d *deferredCtx) addI(a *Array, idx, delta int32) int32 {
	sh := d.shadowFor(a)
	old := a.I[idx]
	if w := sh.sv[idx]; uint32(w>>32) == sh.epoch {
		old = int32(uint32(w))
	}
	sh.sv[idx] = uint64(sh.epoch)<<32 | uint64(uint32(old+delta))
	d.ops = append(d.ops, memOp{aid: a.id, idx: idx, op: opAddI, iv: delta})
	return old
}

func (d *deferredCtx) addF(a *Array, idx int32, delta float32) {
	sh := d.shadowFor(a)
	old := a.F[idx]
	if w := sh.sv[idx]; uint32(w>>32) == sh.epoch {
		old = math.Float32frombits(uint32(w))
	}
	sh.sv[idx] = uint64(sh.epoch)<<32 | uint64(math.Float32bits(old+delta))
	d.ops = append(d.ops, memOp{aid: a.id, idx: idx, op: opAddF, fv: delta})
}

// minI lowers the task-local view and logs a min to merge against the live
// value. Call only when v improves on loadI's result.
func (d *deferredCtx) minI(a *Array, idx, v int32) {
	sh := d.shadowFor(a)
	sh.sv[idx] = uint64(sh.epoch)<<32 | uint64(uint32(v))
	d.ops = append(d.ops, memOp{aid: a.id, idx: idx, op: opMinI, iv: v})
}

// casI records a compare-and-swap that succeeded under the task's view.
func (d *deferredCtx) casI(a *Array, idx, old, v int32) {
	sh := d.shadowFor(a)
	sh.sv[idx] = uint64(sh.epoch)<<32 | uint64(uint32(v))
	d.ops = append(d.ops, memOp{aid: a.id, idx: idx, op: opCASI, iv: v, old: old})
}

// applyOp commits one logged write, resolving the array through the engine's
// dense registry. Values were counted at execution time; application is
// functional only.
func applyOp(e *Engine, o *memOp) {
	a := e.arrays[o.aid]
	switch o.op {
	case opStoreI:
		a.I[o.idx] = o.iv
	case opStoreF:
		a.F[o.idx] = o.fv
	case opAddI:
		a.I[o.idx] += o.iv
	case opAddF:
		a.F[o.idx] += o.fv
	case opMinI:
		if o.iv < a.I[o.idx] {
			a.I[o.idx] = o.iv
		}
	case opCASI:
		if a.I[o.idx] == o.old {
			a.I[o.idx] = o.iv
		}
	}
}

// --- TaskCtx deferred plumbing ---

// Deferred reports whether this task runs with deferred effects (private
// shards merged at barriers). The worklist package branches on it to stage
// pushes instead of mutating shared tails.
func (tc *TaskCtx) Deferred() bool { return tc.def != nil }

// MarkStageFree declares that the current segment will stage no worklist
// pushes, letting a cooperative deferred task probe the memory hierarchy
// immediately instead of recording a full access trace. Tasks run serially
// in task order in that mode, so immediate probes evolve the cache in
// exactly the order a merge-time replay would, and the per-access cost
// bytes fold into the stall sum at the merge boundary in the same float
// order — modeled time, statistics and hit counters are bit-identical to a
// recorded segment. The mark must precede the segment's first access (a
// prior access locks recording mode) and is ignored in live mode (no
// deferral) and parallel mode (concurrent tasks must not touch the shared
// hierarchy mid-segment). Every task of a launch runs the same driver code,
// so all tasks of a segment decide identically and the global probe order
// is preserved.
func (tc *TaskCtx) MarkStageFree() {
	if d := tc.def; d != nil && tc.serialDef && d.mode == segUndecided {
		d.mode = segImmediate
	}
}

// noteAccess accounts one memory access. Live mode and stage-free
// cooperative segments page and probe the cache immediately; recording mode
// appends a trace event replayed at the segment boundary — folding the
// access into the previous trace word when both hit the same cache line, so
// gather/scatter runs over hot lines cost one word, not one per lane. All
// paths charge through the same Mem.Access probe and the engine's
// premultiplied stall table, so stalls are identical by construction.
func (tc *TaskCtx) noteAccess(addr int64, kind machine.AccessKind) {
	if d := tc.def; d != nil && d.mode != segImmediate {
		d.mode = segRecording
		if s := d.dedupShift; s != 0 {
			if n := len(d.acc); n > 0 {
				last := d.acc[n-1]
				if last&accStagedBit == 0 &&
					(last>>accKindShift)&3 == int64(kind) &&
					last>>accCountShift < accMaxCount &&
					((last>>accAddrShift)&accAddrMask)>>s == addr>>s {
					d.acc[n-1] = last + 1<<accCountShift
					return
				}
			}
		}
		d.acc = append(d.acc, addr<<accAddrShift|int64(kind)<<accKindShift)
		return
	}
	e := tc.E
	if e.Pager != nil {
		tc.touchPage(addr)
	}
	lvl := e.Mem.Access(tc.core, addr)
	if d := tc.def; d != nil {
		// Stage-free segment: the probe happened now, in replay order; the
		// stall folds at the merge boundary, after the task's execution-time
		// stalls, exactly where a replay would have added it.
		d.costs = append(d.costs, byte(kind)<<2|byte(lvl))
		return
	}
	tc.stl[accCostClass[kind]] += e.stallTab[kind][lvl]
}

// Batch returns the task's staging batch for the given push target, creating
// it on first use. Creation order is the materialization order within the
// task, mirroring the program order of a serial schedule. Targets resolve
// through a dense-id table; batch objects are pooled across segments.
func (tc *TaskCtx) Batch(t PushTarget) *PushBatch {
	d := tc.def
	if d.mode == segImmediate {
		// The driver promised a stage-free segment (MarkStageFree) and the
		// kernel staged anyway: its probes already hit the hierarchy, so
		// recording can no longer reproduce the serial order. This is a
		// driver bug (the push analysis missed a staging path), never a
		// data-dependent condition — fail loudly.
		panic("spmd: worklist push in a segment marked stage-free")
	}
	id := int(t.PushID())
	if id < len(d.batchTab) {
		if b := d.batchTab[id]; b != nil {
			return b
		}
	} else {
		d.batchTab = append(d.batchTab, make([]*PushBatch, id+1-len(d.batchTab))...)
	}
	var b *PushBatch
	if n := len(d.freeB); n > 0 {
		b = d.freeB[n-1]
		d.freeB = d.freeB[:n-1]
	} else {
		b = &PushBatch{}
	}
	b.target, b.id, b.index = t, int32(id), len(d.batches)
	d.batchTab[id] = b
	d.batches = append(d.batches, b)
	return b
}

// NoteShared records a cost-only access to a shared scalar location (a
// worklist tail) in the task's trace.
func (tc *TaskCtx) NoteShared(a *Array, idx int32) {
	tc.noteAccess(a.Addr(idx), machine.AccPlain)
}

// NoteStaged records n cost-only accesses to staged batch slots [off,off+n):
// their absolute addresses resolve at materialization. Consecutive slots
// pack into run-length trace words.
func (tc *TaskCtx) NoteStaged(b *PushBatch, off, n int32) {
	d := tc.def
	for n > 0 {
		c := int64(n) - 1
		if c > accMaxCount {
			c = accMaxCount
		}
		d.acc = append(d.acc,
			c<<accCountShift|int64(b.index)<<accBatchShift|
				int64(off)<<accAddrShift|
				int64(machine.AccPlain)<<accKindShift|accStagedBit)
		off += int32(c) + 1
		n -= int32(c) + 1
	}
}

// CountAtomics exposes atomic-instruction accounting to the worklist
// package's deferred push paths.
func (tc *TaskCtx) CountAtomics(n int, contended, push bool) {
	tc.countAtomics(n, contended, push)
}

// --- Engine-side merge ---

// replayAccesses replays one task's trace through the memory model and
// pager, charging exposed stalls to the task. A committed word's repeats are
// guaranteed L1 hits (the first access of the run installed the line and
// nothing intervened), so they account through MemModel.RepeatHits without
// re-probing; stalls still accumulate per access to keep the float sum
// bit-identical to an uncompressed replay.
//
// Stalls accumulate in per-kind locals (replay order within each kind) and
// fold into the task's per-class buckets at the end. During deferred
// execution the access-stall classes receive nothing — atomic stalls live in
// their own classes — so each class bucket is zero here and the final add
// reproduces exactly the sum a live run accumulated in place (0 + x == x;
// every charge is non-negative, so no -0 can arise).
func (e *Engine) replayAccesses(tc *TaskCtx) {
	d := tc.def
	mem := e.Mem
	core := tc.core
	paged := e.Pager != nil
	ls := mem.LineShift()
	tags, tmask := mem.L1View(core)
	var st [4]float64
	// Stage-free segment: probes already ran in replay order during serial
	// execution; fold the recorded per-access cost bytes in the same order.
	// Exactly one of costs and acc is non-empty for any segment.
	for _, c := range d.costs {
		st[c>>2] += e.stallFlat[c]
	}
	for _, ev := range d.acc {
		kind := machine.AccessKind((ev >> accKindShift) & 3)
		rep := int(ev >> accCountShift)
		if ev&accStagedBit != 0 {
			b := d.batches[(ev>>accBatchShift)&accBatchMask]
			off := int32((ev >> accAddrShift) & accOffMask)
			for j := int32(0); j <= int32(rep); j++ {
				addr := b.arr.Addr(b.start + off + j)
				if paged {
					tc.touchPage(addr)
				}
				if line := addr >> ls; !paged && tags[line&tmask] == line {
					mem.RepeatHits(1) // inline L1-hit probe
					st[kind] += e.stallTab[kind][machine.L1]
				} else {
					st[kind] += e.stallTab[kind][mem.Access(core, addr)]
				}
			}
			continue
		}
		addr := (ev >> accAddrShift) & accAddrMask
		if paged {
			tc.touchPage(addr)
		}
		if line := addr >> ls; !paged && tags[line&tmask] == line {
			mem.RepeatHits(1) // inline L1-hit probe
			st[kind] += e.stallTab[kind][machine.L1]
		} else {
			st[kind] += e.stallTab[kind][mem.Access(core, addr)]
		}
		if rep > 0 {
			mem.RepeatHits(rep)
			if c := e.stallTab[kind][machine.L1]; c != 0 {
				for j := 0; j < rep; j++ {
					st[kind] += c
				}
			}
		}
	}
	for k := 0; k < 4; k++ {
		tc.stl[accCostClass[k]] += st[k]
	}
}

// mergeSegment commits all tasks' deferred state in task order: batches
// materialize (deterministic reservation), traces replay (deterministic
// cache evolution), operation logs apply, stat shards and serialized-atomic
// floors fold in. A materialization failure (worklist overflow on a
// non-growable list) aborts the merge with a task-attributed typed error.
func (e *Engine) mergeSegment(tcs []*TaskCtx) error {
	for _, tc := range tcs {
		d := tc.def
		if d == nil {
			continue
		}
		for _, b := range d.batches {
			arr, start, err := b.target.Materialize(b.items)
			if err != nil {
				return fmt.Errorf("task %d (kernel %q, iteration %d): %w",
					tc.Index, e.phaseName(), e.iter.Load(), err)
			}
			b.arr, b.start = arr, start
		}
		e.replayAccesses(tc)
		for i := range d.ops {
			applyOp(e, &d.ops[i])
		}
		// Replay the task's phase transitions through the attribution cursor
		// in task order — the order live execution would have moved it — so
		// the segment cost aggregated after this merge charges to the same
		// phase in every mode. Registration order is also reproduced, which
		// keeps bucket slot ids mode-invariant.
		for i := range d.phLog {
			e.attrMark(d.phLog[i].name)
		}
		if e.prof != nil {
			e.prof.foldTask(e, tc)
		}
		e.Stats.Add(&tc.shard)
		tc.shard = Stats{}
		e.segSerialAtomics += d.serialAtomics
		d.reset()
	}
	return nil
}
