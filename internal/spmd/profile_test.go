package spmd

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/vec"
)

func TestProfileAttributesPhases(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 2)
	e.EnableProfiling()
	e.Launch(2, func(tc *TaskCtx) {
		tc.MarkPhase("light")
		tc.OpN(vec.ClassALU, false, 10)
		tc.Barrier()
		tc.MarkPhase("heavy")
		tc.OpN(vec.ClassALU, false, 100000)
	})
	phases := e.Profile()
	if len(phases) != 2 {
		t.Fatalf("phases = %d", len(phases))
	}
	// Sorted by cycles: heavy first.
	if phases[0].Name != "heavy" || phases[1].Name != "light" {
		t.Fatalf("order: %s, %s", phases[0].Name, phases[1].Name)
	}
	if phases[0].Stats.Instructions != 200000 {
		t.Errorf("heavy instrs = %d, want 200000 (2 tasks x 100000)", phases[0].Stats.Instructions)
	}
	if phases[1].Stats.Instructions != 20 {
		t.Errorf("light instrs = %d, want 20", phases[1].Stats.Instructions)
	}
	if phases[0].Visits != 2 || phases[1].Visits != 2 {
		t.Errorf("visits = %d/%d, want 2 each (task-level)", phases[0].Visits, phases[1].Visits)
	}
	if phases[0].Cycles <= phases[1].Cycles {
		t.Error("heavy phase should carry more cycles")
	}
}

// TestProfileIdenticalAcrossModes: the per-phase attribution (stats, cycles,
// visits) must be bit-identical whether tasks run live, deferred-cooperative
// or on real goroutines — profiling no longer forces the live scheduler.
func TestProfileIdenticalAcrossModes(t *testing.T) {
	run := func(mode Exec) []*PhaseStats {
		e := New(machine.Intel8(), vec.TargetAVX512x16, 4)
		e.Exec = mode
		e.EnableProfiling()
		acc := e.AllocI("acc", 64)
		err := e.Launch(4, func(tc *TaskCtx) {
			tc.MarkPhase("init")
			tc.OpN(vec.ClassALU, false, 50+tc.Index)
			tc.Barrier()
			tc.MarkPhase("relax")
			tc.OpN(vec.ClassGather, false, 2000)
			tc.AtomicAddScalar(acc, int32(tc.Index), 1, false)
			tc.Barrier()
			tc.MarkPhase("compact")
			tc.OpN(vec.ClassALU, false, 10*(tc.Index+1))
		})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		return e.Profile()
	}
	ref := run(ExecLive)
	for _, mode := range []Exec{ExecDeferred, ExecParallel} {
		got := run(mode)
		if len(got) != len(ref) {
			t.Fatalf("mode %d: %d phases, want %d", mode, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Name != ref[i].Name || got[i].Visits != ref[i].Visits ||
				got[i].Stats != ref[i].Stats || got[i].Cycles != ref[i].Cycles {
				t.Errorf("mode %d phase %q: %+v cycles=%v visits=%d\nlive %q: %+v cycles=%v visits=%d",
					mode, got[i].Name, got[i].Stats, got[i].Cycles, got[i].Visits,
					ref[i].Name, ref[i].Stats, ref[i].Cycles, ref[i].Visits)
			}
		}
	}
}

func TestProfileDisabledIsNil(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
	e.MarkPhase("x") // no-op
	if e.Profile() != nil {
		t.Error("Profile without EnableProfiling should be nil")
	}
	var buf bytes.Buffer
	e.WriteProfile(&buf)
	if !strings.Contains(buf.String(), "not enabled") {
		t.Errorf("disabled render: %q", buf.String())
	}
}

func TestWriteProfileRenders(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
	e.EnableProfiling()
	e.Launch(1, func(tc *TaskCtx) {
		tc.MarkPhase("work")
		tc.OpN(vec.ClassALU, false, 5)
	})
	var buf bytes.Buffer
	e.WriteProfile(&buf)
	out := buf.String()
	for _, want := range []string{"phase", "work", "%time"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
}
