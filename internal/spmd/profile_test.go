package spmd

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/vec"
)

func TestProfileAttributesPhases(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 2)
	e.EnableProfiling()
	e.Launch(2, func(tc *TaskCtx) {
		e.MarkPhase("light")
		tc.OpN(vec.ClassALU, false, 10)
		tc.Barrier()
		e.MarkPhase("heavy")
		tc.OpN(vec.ClassALU, false, 100000)
	})
	phases := e.Profile()
	if len(phases) != 2 {
		t.Fatalf("phases = %d", len(phases))
	}
	// Sorted by cycles: heavy first.
	if phases[0].Name != "heavy" || phases[1].Name != "light" {
		t.Fatalf("order: %s, %s", phases[0].Name, phases[1].Name)
	}
	if phases[0].Stats.Instructions != 200000 {
		t.Errorf("heavy instrs = %d, want 200000 (2 tasks x 100000)", phases[0].Stats.Instructions)
	}
	if phases[1].Stats.Instructions != 20 {
		t.Errorf("light instrs = %d, want 20", phases[1].Stats.Instructions)
	}
	if phases[0].Visits != 2 || phases[1].Visits != 2 {
		t.Errorf("visits = %d/%d, want 2 each (task-level)", phases[0].Visits, phases[1].Visits)
	}
	if phases[0].Cycles <= phases[1].Cycles {
		t.Error("heavy phase should carry more cycles")
	}
}

func TestProfileDisabledIsNil(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
	e.MarkPhase("x") // no-op
	if e.Profile() != nil {
		t.Error("Profile without EnableProfiling should be nil")
	}
	var buf bytes.Buffer
	e.WriteProfile(&buf)
	if !strings.Contains(buf.String(), "not enabled") {
		t.Errorf("disabled render: %q", buf.String())
	}
}

func TestWriteProfileRenders(t *testing.T) {
	e := New(machine.Intel8(), vec.TargetAVX512x16, 1)
	e.EnableProfiling()
	e.Launch(1, func(tc *TaskCtx) {
		e.MarkPhase("work")
		tc.OpN(vec.ClassALU, false, 5)
	})
	var buf bytes.Buffer
	e.WriteProfile(&buf)
	out := buf.String()
	for _, want := range []string{"phase", "work", "%time"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
}
