//go:build !race

package spmd

const raceEnabled = false
