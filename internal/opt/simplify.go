package opt

import "repro/internal/ir"

// Simplify performs the classic scalar cleanups the original compiler
// inherits from ISPC/LLVM: constant folding, algebraic identities,
// branch folding on constant predicates, and elimination of unused
// declarations. It runs before the throughput passes in Apply so the
// annotated IR the backend sees is already clean.
//
// Folding is deliberately conservative: only pure arithmetic is folded
// (loads and graph accessors have cost-model side effects and are never
// dropped unless the whole declaration is dead), and division/remainder by a
// constant zero is left in place to preserve the target's total semantics.
func Simplify(p *ir.Program) *ir.Program {
	out := p.Clone()
	for _, k := range out.Kernels {
		// Folding and dead-code elimination enable each other (a dead decl
		// can empty an if, an emptied if can kill a decl), so iterate to a
		// fixpoint; kernel bodies are small, convergence takes 2-3 rounds.
		for {
			before := countStmts(k.Body)
			k.Body = simplifyStmts(k.Body)
			k.Body = eliminateDeadDecls(k.Body)
			if countStmts(k.Body) == before {
				break
			}
		}
		if len(k.Body) == 0 {
			// The whole kernel was dead code. Keep a no-op anchor so the
			// IR stays valid (the backend still owes the kernel's launch
			// and scheduling semantics even when its body does nothing).
			k.Body = []ir.Stmt{ir.DeclI("_nop", ir.V(k.ItemVar))}
		}
	}
	return out
}

func countStmts(ss []ir.Stmt) int {
	n := 0
	ir.WalkStmts(ss, func(ir.Stmt) { n++ })
	return n
}

// --- constant folding ---

// constOf extracts an int literal.
func constOf(e ir.Expr) (int32, bool) {
	c, ok := e.(*ir.ConstI)
	if !ok {
		return 0, false
	}
	return c.V, true
}

func constFOf(e ir.Expr) (float32, bool) {
	c, ok := e.(*ir.ConstF)
	if !ok {
		return 0, false
	}
	return c.V, true
}

// boolConst represents a folded predicate: nil = unknown.
func foldPredicate(e ir.Expr) (bool, bool) {
	b, ok := e.(*ir.Bin)
	if !ok || !b.Op.IsCompare() {
		return false, false
	}
	a, okA := constOf(b.A)
	c, okB := constOf(b.B)
	if !okA || !okB {
		return false, false
	}
	switch b.Op {
	case ir.Eq:
		return a == c, true
	case ir.Ne:
		return a != c, true
	case ir.Lt:
		return a < c, true
	case ir.Le:
		return a <= c, true
	case ir.Gt:
		return a > c, true
	case ir.Ge:
		return a >= c, true
	}
	return false, false
}

func foldExpr(e ir.Expr) ir.Expr {
	switch e := e.(type) {
	case *ir.Bin:
		e.A, e.B = foldExpr(e.A), foldExpr(e.B)
		if e.Op.IsLogical() || e.Op.IsCompare() {
			return e
		}
		if av, ok := constOf(e.A); ok {
			if bv, ok := constOf(e.B); ok {
				if v, ok := foldIntOp(e.Op, av, bv); ok {
					return ir.CI(v)
				}
				return e
			}
		}
		if av, ok := constFOf(e.A); ok {
			if bv, ok := constFOf(e.B); ok {
				if v, ok := foldFloatOp(e.Op, av, bv); ok {
					return ir.CF(v)
				}
				return e
			}
		}
		return foldIdentity(e)
	case *ir.Not:
		e.A = foldExpr(e.A)
		if inner, ok := e.A.(*ir.Not); ok {
			return inner.A // !!x -> x
		}
		return e
	case *ir.Sel:
		e.Cond, e.A, e.B = foldExpr(e.Cond), foldExpr(e.A), foldExpr(e.B)
		if v, ok := foldPredicate(e.Cond); ok {
			if v {
				return e.A
			}
			return e.B
		}
		return e
	case *ir.Load:
		e.Idx = foldExpr(e.Idx)
		return e
	case *ir.RowStart:
		e.Node = foldExpr(e.Node)
		return e
	case *ir.RowEnd:
		e.Node = foldExpr(e.Node)
		return e
	case *ir.EdgeDst:
		e.Edge = foldExpr(e.Edge)
		return e
	case *ir.EdgeWt:
		e.Edge = foldExpr(e.Edge)
		return e
	case *ir.ToF:
		e.A = foldExpr(e.A)
		if v, ok := constOf(e.A); ok {
			return ir.CF(float32(v))
		}
		return e
	case *ir.ToI:
		e.A = foldExpr(e.A)
		if v, ok := constFOf(e.A); ok {
			return ir.CI(int32(v))
		}
		return e
	default:
		return e
	}
}

func foldIntOp(op ir.BinOp, a, b int32) (int32, bool) {
	switch op {
	case ir.Add:
		return a + b, true
	case ir.Sub:
		return a - b, true
	case ir.Mul:
		return a * b, true
	case ir.Div:
		if b == 0 {
			return 0, false // preserve the runtime's total-division semantics
		}
		return a / b, true
	case ir.Rem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.And:
		return a & b, true
	case ir.Or:
		return a | b, true
	case ir.Xor:
		return a ^ b, true
	case ir.Shl:
		return a << (uint32(b) & 31), true
	case ir.Shr:
		return a >> (uint32(b) & 31), true
	case ir.Min:
		if a < b {
			return a, true
		}
		return b, true
	case ir.Max:
		if a > b {
			return a, true
		}
		return b, true
	}
	return 0, false
}

func foldFloatOp(op ir.BinOp, a, b float32) (float32, bool) {
	switch op {
	case ir.Add:
		return a + b, true
	case ir.Sub:
		return a - b, true
	case ir.Mul:
		return a * b, true
	case ir.Div:
		return a / b, true
	case ir.Min:
		if a < b {
			return a, true
		}
		return b, true
	case ir.Max:
		if a > b {
			return a, true
		}
		return b, true
	}
	return 0, false
}

// foldIdentity applies x+0, x-0, x*1, x*0, x|0, x&-1, x^0, x<<0, x>>0.
// Only the right operand is matched (the canonical form the kernels use);
// x*0 folds to 0 only when x is side-effect free.
func foldIdentity(e *ir.Bin) ir.Expr {
	bv, ok := constOf(e.B)
	if !ok {
		return e
	}
	switch {
	case bv == 0 && (e.Op == ir.Add || e.Op == ir.Sub || e.Op == ir.Or ||
		e.Op == ir.Xor || e.Op == ir.Shl || e.Op == ir.Shr):
		return e.A
	case bv == 1 && e.Op == ir.Mul:
		return e.A
	case bv == 0 && e.Op == ir.Mul && pureExpr(e.A):
		return ir.CI(0)
	case bv == -1 && e.Op == ir.And:
		return e.A
	}
	return e
}

// pureExpr reports whether evaluating e has no cost-model side effects
// (no memory accesses).
func pureExpr(e ir.Expr) bool {
	switch e := e.(type) {
	case *ir.ConstI, *ir.ConstF, *ir.Param, *ir.Var, *ir.NumNodes:
		return true
	case *ir.Bin:
		return pureExpr(e.A) && pureExpr(e.B)
	case *ir.Not:
		return pureExpr(e.A)
	case *ir.Sel:
		return pureExpr(e.Cond) && pureExpr(e.A) && pureExpr(e.B)
	case *ir.ToF:
		return pureExpr(e.A)
	case *ir.ToI:
		return pureExpr(e.A)
	default:
		// Loads, graph accessors: cost-model effects.
		return false
	}
}

// --- statement simplification ---

func simplifyStmts(ss []ir.Stmt) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(ss))
	for _, s := range ss {
		out = append(out, simplifyStmt(s)...)
	}
	return out
}

func simplifyStmt(s ir.Stmt) []ir.Stmt {
	switch s := s.(type) {
	case *ir.Decl:
		s.Init = foldExpr(s.Init)
	case *ir.Assign:
		s.Val = foldExpr(s.Val)
	case *ir.Store:
		s.Idx, s.Val = foldExpr(s.Idx), foldExpr(s.Val)
	case *ir.If:
		s.Cond = foldExpr(s.Cond)
		s.Then = simplifyStmts(s.Then)
		s.Else = simplifyStmts(s.Else)
		if v, ok := foldPredicate(s.Cond); ok {
			if v {
				return s.Then
			}
			return s.Else
		}
		if len(s.Then) == 0 && len(s.Else) == 0 {
			return nil
		}
	case *ir.While:
		s.Cond = foldExpr(s.Cond)
		s.Body = simplifyStmts(s.Body)
		if v, ok := foldPredicate(s.Cond); ok && !v {
			return nil // while(false)
		}
	case *ir.ForEdges:
		s.Node = foldExpr(s.Node)
		s.Body = simplifyStmts(s.Body)
	case *ir.Push:
		s.Val = foldExpr(s.Val)
	case *ir.AtomicMin:
		s.Idx, s.Val = foldExpr(s.Idx), foldExpr(s.Val)
	case *ir.AtomicCAS:
		s.Idx, s.Old, s.New = foldExpr(s.Idx), foldExpr(s.Old), foldExpr(s.New)
	case *ir.AtomicAdd:
		s.Idx, s.Val = foldExpr(s.Idx), foldExpr(s.Val)
	case *ir.AccumAdd:
		s.Val = foldExpr(s.Val)
	}
	return []ir.Stmt{s}
}

// --- dead declaration elimination ---

// eliminateDeadDecls removes Decl statements whose variable is never read
// and whose initializer is pure, iterating to a fixpoint (removing one dead
// declaration can kill another).
func eliminateDeadDecls(ss []ir.Stmt) []ir.Stmt {
	for {
		uses := map[string]int{}
		countUses(ss, uses)
		// Assignments whose value has cost-model effects cannot be removed,
		// which keeps their target's declaration live too.
		pinned := map[string]bool{}
		ir.WalkStmts(ss, func(s ir.Stmt) {
			if a, ok := s.(*ir.Assign); ok && !pureExpr(a.Val) {
				pinned[a.Name] = true
			}
		})
		removed := false
		ss = filterDecls(ss, uses, pinned, &removed)
		if !removed {
			return ss
		}
	}
}

func countUses(ss []ir.Stmt, uses map[string]int) {
	var visitExpr func(e ir.Expr)
	visitExpr = func(e ir.Expr) {
		switch e := e.(type) {
		case *ir.Var:
			uses[e.Name]++
		case *ir.Bin:
			visitExpr(e.A)
			visitExpr(e.B)
		case *ir.Not:
			visitExpr(e.A)
		case *ir.Sel:
			visitExpr(e.Cond)
			visitExpr(e.A)
			visitExpr(e.B)
		case *ir.Load:
			visitExpr(e.Idx)
		case *ir.RowStart:
			visitExpr(e.Node)
		case *ir.RowEnd:
			visitExpr(e.Node)
		case *ir.EdgeDst:
			visitExpr(e.Edge)
		case *ir.EdgeWt:
			visitExpr(e.Edge)
		case *ir.ToF:
			visitExpr(e.A)
		case *ir.ToI:
			visitExpr(e.A)
		}
	}
	ir.WalkStmts(ss, func(s ir.Stmt) {
		switch s := s.(type) {
		case *ir.Decl:
			visitExpr(s.Init)
		case *ir.Assign:
			// An assignment keeps the variable alive only if something
			// reads it; the write itself is not a use, but its value is.
			visitExpr(s.Val)
		case *ir.Store:
			visitExpr(s.Idx)
			visitExpr(s.Val)
		case *ir.If:
			visitExpr(s.Cond)
		case *ir.While:
			visitExpr(s.Cond)
		case *ir.ForEdges:
			visitExpr(s.Node)
		case *ir.Push:
			visitExpr(s.Val)
		case *ir.AtomicMin:
			visitExpr(s.Idx)
			visitExpr(s.Val)
		case *ir.AtomicCAS:
			visitExpr(s.Idx)
			visitExpr(s.Old)
			visitExpr(s.New)
		case *ir.AtomicAdd:
			visitExpr(s.Idx)
			visitExpr(s.Val)
		case *ir.AccumAdd:
			visitExpr(s.Val)
		}
	})
}

func filterDecls(ss []ir.Stmt, uses map[string]int, pinned map[string]bool, removed *bool) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(ss))
	for _, s := range ss {
		switch s := s.(type) {
		case *ir.Decl:
			if uses[s.Name] == 0 && !pinned[s.Name] && pureExpr(s.Init) {
				*removed = true
				continue
			}
		case *ir.Assign:
			if uses[s.Name] == 0 && pureExpr(s.Val) {
				*removed = true
				continue
			}
		case *ir.If:
			s.Then = filterDecls(s.Then, uses, pinned, removed)
			s.Else = filterDecls(s.Else, uses, pinned, removed)
		case *ir.While:
			s.Body = filterDecls(s.Body, uses, pinned, removed)
		case *ir.ForEdges:
			s.Body = filterDecls(s.Body, uses, pinned, removed)
		}
		out = append(out, s)
	}
	return out
}
