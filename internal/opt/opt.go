// Package opt implements the GPU-derived throughput optimizations the paper
// retargets to CPU SIMD, as IR-to-IR annotation passes:
//
//   - Iteration Outlining (IO): move the iterative Pipe loop inside a single
//     task launch, replacing per-iteration launches with in-kernel barriers
//     (Section III-A, Listing 2).
//   - Nested Parallelism (NP): replace the serial per-lane edge loop with the
//     inspector-executor scheduler that redistributes skewed inner-loop work
//     across lanes (Section III-B2, Fig. 2).
//   - Cooperative Conversion (CC): aggregate per-lane atomic worklist pushes
//     into one atomic per vector at task level (Section III-C).
//   - Fibers: emulate CUDA thread blocks by multiplexing virtual tasks onto
//     each OS thread, enabling fiber-level CC where push counts are
//     computable in advance (Section III-B1).
package opt

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Options selects which optimizations to apply. The zero value is the
// unoptimized SIMD build.
type Options struct {
	IO      bool
	NP      bool
	CC      bool
	Fibers  bool
	FiberCC bool
}

// None returns the unoptimized configuration.
func None() Options { return Options{} }

// All returns the fully optimized configuration the paper calls "EGACS".
func All() Options {
	return Options{IO: true, NP: true, CC: true, Fibers: true, FiberCC: true}
}

// Parse reads a +-separated option string such as "io+np+cc" or "all"/"none".
func Parse(s string) (Options, error) {
	switch s {
	case "", "none", "unopt":
		return None(), nil
	case "all":
		return All(), nil
	}
	var o Options
	for _, part := range strings.Split(s, "+") {
		switch part {
		case "io":
			o.IO = true
		case "np":
			o.NP = true
		case "cc":
			o.CC = true
		case "fibers":
			o.Fibers = true
		case "fibercc":
			o.Fibers, o.FiberCC = true, true
		default:
			return Options{}, fmt.Errorf("opt: unknown optimization %q", part)
		}
	}
	return o, nil
}

func (o Options) String() string {
	if o == (Options{}) {
		return "none"
	}
	var parts []string
	if o.IO {
		parts = append(parts, "io")
	}
	if o.NP {
		parts = append(parts, "np")
	}
	if o.CC {
		parts = append(parts, "cc")
	}
	if o.Fibers {
		parts = append(parts, "fibers")
	}
	if o.FiberCC {
		parts = append(parts, "fibercc")
	}
	return strings.Join(parts, "+")
}

// Apply clones the program and runs the selected passes, returning the
// transformed program. The input is never modified. The result is
// re-validated; pass bugs surface here rather than in the backend.
func Apply(p *ir.Program, o Options) (*ir.Program, error) {
	out := Simplify(p) // scalar cleanups run unconditionally, as in ISPC/LLVM
	if o.IO {
		iterationOutlining(out)
	}
	if o.NP {
		nestedParallelism(out)
	}
	if o.CC {
		cooperativeConversion(out)
	}
	if o.Fibers {
		fibers(out, o.FiberCC && o.CC)
	}
	if err := ir.Validate(out); err != nil {
		return nil, fmt.Errorf("opt: %v produced invalid IR: %w", o, err)
	}
	return out, nil
}

// MustApply is Apply for known-valid programs (kernels shipped in-tree).
func MustApply(p *ir.Program, o Options) *ir.Program {
	out, err := Apply(p, o)
	if err != nil {
		panic(err)
	}
	return out
}

// iterationOutlining marks the pipe for single-launch execution. The backend
// then runs the whole driver loop inside one launch, synchronizing rounds
// with barriers, exactly as Listing 2 transforms bfs into bfs_loop.
func iterationOutlining(p *ir.Program) {
	p.Outline = ir.Outlined
}

// nestedParallelism switches edge loops to the inspector-executor schedule.
// Loops whose bodies assign variables declared outside the loop are skipped:
// redistribution runs bodies on permuted lane frames whose register writes
// are discarded, so such loops cannot be redistributed (they must write
// through arrays, atomics or pushes to be NP-eligible).
func nestedParallelism(p *ir.Program) {
	for _, k := range p.Kernels {
		ir.WalkStmts(k.Body, func(s ir.Stmt) {
			if fe, ok := s.(*ir.ForEdges); ok && edgeLoopNPSafe(fe) {
				fe.Sched = ir.SchedNP
			}
		})
	}
}

// edgeLoopNPSafe reports whether every variable the body assigns is declared
// inside the body (statements appear in program order, so declarations are
// walked before their uses).
func edgeLoopNPSafe(fe *ir.ForEdges) bool {
	declared := map[string]bool{fe.EdgeVar: true}
	safe := true
	ir.WalkStmts(fe.Body, func(s ir.Stmt) {
		switch s := s.(type) {
		case *ir.Decl:
			declared[s.Name] = true
		case *ir.AtomicMin:
			if s.Success != "" {
				declared[s.Success] = true
			}
		case *ir.AtomicCAS:
			if s.Success != "" {
				declared[s.Success] = true
			}
		case *ir.ForEdges:
			declared[s.EdgeVar] = true
		case *ir.Assign:
			if !declared[s.Name] {
				safe = false
			}
		}
	})
	return safe
}

// cooperativeConversion aggregates pushes at task level.
func cooperativeConversion(p *ir.Program) {
	for _, k := range p.Kernels {
		ir.WalkStmts(k.Body, func(s ir.Stmt) {
			if push, ok := s.(*ir.Push); ok {
				push.Mode = ir.PushCoop
			}
		})
	}
}

// fibers enables thread-block emulation on every kernel; when fiberCC is set
// it additionally upgrades pushes to bulk-reserved mode in kernels whose
// push count is computable in advance (bfs-cx, bfs-hb).
func fibers(p *ir.Program, fiberCC bool) {
	for _, k := range p.Kernels {
		k.Fibers = true
		if fiberCC && k.PushCountComputable {
			k.FiberCC = true
			ir.WalkStmts(k.Body, func(s ir.Stmt) {
				if push, ok := s.(*ir.Push); ok {
					push.Mode = ir.PushReserved
				}
			})
		}
	}
}

// Configs returns the named optimization combinations evaluated in Fig. 5,
// in presentation order.
func Configs() []struct {
	Name string
	Opts Options
} {
	return []struct {
		Name string
		Opts Options
	}{
		{"unopt", None()},
		{"io", Options{IO: true}},
		{"io+cc+np", Options{IO: true, CC: true, NP: true}},
		{"io+cc+np+fibers", Options{IO: true, CC: true, NP: true, Fibers: true, FiberCC: true}},
	}
}
