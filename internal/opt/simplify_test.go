package opt

import (
	"testing"

	"repro/internal/ir"
)

// simpProg wraps statements into a minimal valid kernel.
func simpProg(body ...ir.Stmt) *ir.Program {
	return &ir.Program{
		Name: "simp",
		Arrays: []ir.ArrayDecl{
			{Name: "out", T: ir.I32, Size: ir.SizeNodes},
			{Name: "fa", T: ir.F32, Size: ir.SizeNodes},
		},
		Kernels: []*ir.Kernel{{
			Name: "k", Domain: ir.DomainNodes, ItemVar: "n", Body: body,
		}},
		Pipe: []ir.PipeStmt{&ir.Invoke{Kernel: "k"}},
	}
}

func simplifyBody(t *testing.T, body ...ir.Stmt) []ir.Stmt {
	t.Helper()
	p := simpProg(body...)
	if err := ir.Validate(p); err != nil {
		t.Fatalf("test program invalid: %v", err)
	}
	out := Simplify(p)
	if err := ir.Validate(out); err != nil {
		t.Fatalf("Simplify produced invalid IR: %v", err)
	}
	return out.Kernels[0].Body
}

func TestFoldArithmetic(t *testing.T) {
	body := simplifyBody(t,
		ir.St("out", ir.V("n"), ir.AddE(ir.MulE(ir.CI(6), ir.CI(7)), ir.CI(0))),
	)
	st := body[0].(*ir.Store)
	c, ok := st.Val.(*ir.ConstI)
	if !ok || c.V != 42 {
		t.Fatalf("folded value = %v", st.Val)
	}
}

func TestFoldBitwiseAndShift(t *testing.T) {
	cases := []struct {
		e    ir.Expr
		want int32
	}{
		{ir.B(ir.And, ir.CI(0xff), ir.CI(0x0f)), 0x0f},
		{ir.B(ir.Or, ir.CI(8), ir.CI(1)), 9},
		{ir.B(ir.Xor, ir.CI(5), ir.CI(3)), 6},
		{ir.B(ir.Shl, ir.CI(3), ir.CI(4)), 48},
		{ir.B(ir.Shr, ir.CI(-16), ir.CI(2)), -4},
		{ir.MinE(ir.CI(3), ir.CI(9)), 3},
		{ir.MaxE(ir.CI(3), ir.CI(9)), 9},
		{ir.B(ir.Rem, ir.CI(17), ir.CI(5)), 2},
	}
	for i, c := range cases {
		body := simplifyBody(t, ir.St("out", ir.V("n"), c.e))
		got, ok := body[0].(*ir.Store).Val.(*ir.ConstI)
		if !ok || got.V != c.want {
			t.Errorf("case %d: got %v, want %d", i, body[0].(*ir.Store).Val, c.want)
		}
	}
}

func TestDivRemByZeroNotFolded(t *testing.T) {
	body := simplifyBody(t, ir.St("out", ir.V("n"), ir.B(ir.Div, ir.CI(5), ir.CI(0))))
	if _, ok := body[0].(*ir.Store).Val.(*ir.ConstI); ok {
		t.Error("div by constant zero must not fold (total semantics live in the target)")
	}
}

func TestFoldFloatAndConversions(t *testing.T) {
	body := simplifyBody(t,
		ir.St("fa", ir.V("n"), ir.MulE(ir.CF(2.5), ir.CF(4))),
		ir.St("fa", ir.V("n"), &ir.ToF{A: ir.CI(3)}),
		ir.St("out", ir.V("n"), &ir.ToI{A: ir.CF(7.9)}),
	)
	if c := body[0].(*ir.Store).Val.(*ir.ConstF); c.V != 10 {
		t.Errorf("float fold = %v", c.V)
	}
	if c := body[1].(*ir.Store).Val.(*ir.ConstF); c.V != 3 {
		t.Errorf("ToF fold = %v", c.V)
	}
	if c := body[2].(*ir.Store).Val.(*ir.ConstI); c.V != 7 {
		t.Errorf("ToI fold = %v", c.V)
	}
}

func TestIdentities(t *testing.T) {
	// n*1 -> n ; n+0 -> n ; n*0 -> 0 (pure) ; load*0 stays.
	body := simplifyBody(t,
		ir.St("out", ir.V("n"), ir.MulE(ir.V("n"), ir.CI(1))),
		ir.St("out", ir.V("n"), ir.AddE(ir.V("n"), ir.CI(0))),
		ir.St("out", ir.V("n"), ir.MulE(ir.V("n"), ir.CI(0))),
		ir.St("out", ir.V("n"), ir.MulE(ir.Ld("out", ir.V("n")), ir.CI(0))),
	)
	if _, ok := body[0].(*ir.Store).Val.(*ir.Var); !ok {
		t.Error("n*1 not simplified")
	}
	if _, ok := body[1].(*ir.Store).Val.(*ir.Var); !ok {
		t.Error("n+0 not simplified")
	}
	if c, ok := body[2].(*ir.Store).Val.(*ir.ConstI); !ok || c.V != 0 {
		t.Error("n*0 not folded to 0")
	}
	if _, ok := body[3].(*ir.Store).Val.(*ir.Bin); !ok {
		t.Error("load*0 must not fold away the load (cost-model side effect)")
	}
}

func TestBranchFolding(t *testing.T) {
	// if (1 < 2) { A } else { B }  ->  A
	body := simplifyBody(t,
		ir.IfElse(ir.LtE(ir.CI(1), ir.CI(2)),
			[]ir.Stmt{ir.St("out", ir.V("n"), ir.CI(1))},
			[]ir.Stmt{ir.St("out", ir.V("n"), ir.CI(2))},
		),
	)
	if len(body) != 1 {
		t.Fatalf("folded body = %d stmts", len(body))
	}
	if v := body[0].(*ir.Store).Val.(*ir.ConstI).V; v != 1 {
		t.Errorf("wrong branch kept: %d", v)
	}
	// if (1 > 2) with no else -> nothing.
	body = simplifyBody(t,
		ir.IfS(ir.GtE(ir.CI(1), ir.CI(2)), ir.St("out", ir.V("n"), ir.CI(1))),
		ir.St("out", ir.V("n"), ir.CI(9)),
	)
	if len(body) != 1 {
		t.Fatalf("dead branch kept: %d stmts", len(body))
	}
	// while(false) -> nothing.
	body = simplifyBody(t,
		ir.WhileS(ir.NeE(ir.CI(0), ir.CI(0)), ir.St("out", ir.V("n"), ir.CI(1))),
		ir.St("out", ir.V("n"), ir.CI(3)),
	)
	if len(body) != 1 {
		t.Fatal("while(false) survived")
	}
}

func TestEmptyIfRemoved(t *testing.T) {
	body := simplifyBody(t,
		ir.DeclI("x", ir.CI(1)), // keeps the predicate below non-constant
		ir.IfS(ir.LtE(ir.V("x"), ir.CI(5)), ir.DeclI("dead", ir.CI(0))),
		ir.St("out", ir.V("n"), ir.V("x")),
	)
	// The dead decl disappears, making the If empty, which disappears too.
	for _, s := range body {
		if _, isIf := s.(*ir.If); isIf {
			t.Fatal("empty if survived")
		}
	}
}

func TestDeadDeclElimination(t *testing.T) {
	body := simplifyBody(t,
		ir.DeclI("a", ir.CI(1)),                     // used by b
		ir.DeclI("b", ir.AddE(ir.V("a"), ir.CI(1))), // unused -> dead, then a dead
		ir.St("out", ir.V("n"), ir.CI(7)),
	)
	if len(body) != 1 {
		t.Fatalf("dead decl chain survived: %d stmts", len(body))
	}
	// A decl with a load initializer is not removed even if unused... unless
	// nothing reads it: loads are impure, so it must stay.
	body = simplifyBody(t,
		ir.DeclI("g", ir.Ld("out", ir.V("n"))),
		ir.St("out", ir.V("n"), ir.CI(7)),
	)
	if len(body) != 2 {
		t.Fatal("load-initialized decl was removed")
	}
}

func TestDoubleNegation(t *testing.T) {
	body := simplifyBody(t,
		ir.DeclB("p", ir.NotE(ir.NotE(ir.LtE(ir.V("n"), ir.CI(5))))),
		ir.IfS(ir.V("p"), ir.St("out", ir.V("n"), ir.CI(1))),
	)
	d := body[0].(*ir.Decl)
	if _, isNot := d.Init.(*ir.Not); isNot {
		t.Error("double negation not removed")
	}
}

// TestSimplifyPreservesSemantics: a kernel with foldable clutter must behave
// identically after simplification (checked through the validator +
// structural equivalence of the meaningful parts).
func TestSimplifyPreservesOriginal(t *testing.T) {
	p := simpProg(ir.St("out", ir.V("n"), ir.AddE(ir.CI(1), ir.CI(2))))
	_ = Simplify(p)
	// The input must be untouched (Simplify clones).
	if _, ok := p.Kernels[0].Body[0].(*ir.Store).Val.(*ir.Bin); !ok {
		t.Error("Simplify mutated its input")
	}
}
