package opt

import (
	"testing"

	"repro/internal/ir"
)

// testProgram builds a worklist program with one edge loop and one push,
// marked push-count-computable so fiber-level CC applies.
func testProgram() *ir.Program {
	return &ir.Program{
		Name: "test",
		Arrays: []ir.ArrayDecl{
			{Name: "lvl", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitSplatExceptSrc, InitI: 1 << 30},
		},
		WLInit:     ir.WLSrc,
		WLCapEdges: true,
		Kernels: []*ir.Kernel{{
			Name:                "k",
			Domain:              ir.DomainWL,
			ItemVar:             "node",
			PushCountComputable: true,
			Body: []ir.Stmt{
				ir.ForE("e", ir.V("node"),
					ir.DeclI("dst", &ir.EdgeDst{Edge: ir.V("e")}),
					ir.IfS(ir.EqE(ir.Ld("lvl", ir.V("dst")), ir.CI(1<<30)),
						ir.PushOut(ir.V("dst"))),
				),
			},
		}},
		Pipe: []ir.PipeStmt{&ir.LoopWL{Body: []ir.PipeStmt{&ir.Invoke{Kernel: "k"}}}},
	}
}

func findForEdges(k *ir.Kernel) *ir.ForEdges {
	var fe *ir.ForEdges
	ir.WalkStmts(k.Body, func(s ir.Stmt) {
		if f, ok := s.(*ir.ForEdges); ok {
			fe = f
		}
	})
	return fe
}

func findPush(k *ir.Kernel) *ir.Push {
	var p *ir.Push
	ir.WalkStmts(k.Body, func(s ir.Stmt) {
		if pp, ok := s.(*ir.Push); ok {
			p = pp
		}
	})
	return p
}

func TestApplyNoneLeavesDefaults(t *testing.T) {
	p := testProgram()
	out, err := Apply(p, None())
	if err != nil {
		t.Fatal(err)
	}
	k := out.Kernels[0]
	if out.Outline != ir.LaunchPerIteration {
		t.Error("unexpected outlining")
	}
	if findForEdges(k).Sched != ir.SchedSerial {
		t.Error("unexpected NP")
	}
	if findPush(k).Mode != ir.PushUnopt {
		t.Error("unexpected CC")
	}
	if k.Fibers || k.FiberCC {
		t.Error("unexpected fibers")
	}
}

func TestApplyAll(t *testing.T) {
	p := testProgram()
	out, err := Apply(p, All())
	if err != nil {
		t.Fatal(err)
	}
	k := out.Kernels[0]
	if out.Outline != ir.Outlined {
		t.Error("IO not applied")
	}
	if findForEdges(k).Sched != ir.SchedNP {
		t.Error("NP not applied")
	}
	if !k.Fibers || !k.FiberCC {
		t.Error("fibers not applied")
	}
	if findPush(k).Mode != ir.PushReserved {
		t.Error("fiber-level CC should upgrade pushes to reserved mode")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	p := testProgram()
	if _, err := Apply(p, All()); err != nil {
		t.Fatal(err)
	}
	if p.Outline != ir.LaunchPerIteration {
		t.Error("input outlining mutated")
	}
	if p.Kernels[0].Fibers {
		t.Error("input kernel mutated")
	}
	if findPush(p.Kernels[0]).Mode != ir.PushUnopt {
		t.Error("input push mutated")
	}
	if findForEdges(p.Kernels[0]).Sched != ir.SchedSerial {
		t.Error("input edge loop mutated")
	}
}

func TestFiberCCRequiresComputablePushes(t *testing.T) {
	p := testProgram()
	p.Kernels[0].PushCountComputable = false
	out, err := Apply(p, All())
	if err != nil {
		t.Fatal(err)
	}
	k := out.Kernels[0]
	if k.FiberCC {
		t.Error("fiber CC applied to non-computable kernel")
	}
	// Task-level CC still applies.
	if findPush(k).Mode != ir.PushCoop {
		t.Error("task-level CC should still apply")
	}
	if !k.Fibers {
		t.Error("fibers should still apply")
	}
}

func TestCCWithoutFibers(t *testing.T) {
	out, err := Apply(testProgram(), Options{CC: true})
	if err != nil {
		t.Fatal(err)
	}
	if findPush(out.Kernels[0]).Mode != ir.PushCoop {
		t.Error("CC alone should use coop pushes")
	}
	if out.Kernels[0].Fibers {
		t.Error("fibers leaked in")
	}
}

func TestParseAndString(t *testing.T) {
	cases := map[string]Options{
		"":                None(),
		"none":            None(),
		"all":             All(),
		"io":              {IO: true},
		"io+cc+np":        {IO: true, CC: true, NP: true},
		"io+fibercc":      {IO: true, Fibers: true, FiberCC: true},
		"np+cc+fibers+io": {IO: true, NP: true, CC: true, Fibers: true},
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("Parse(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := Parse("io+warp"); err == nil {
		t.Error("Parse accepted unknown pass")
	}
	if All().String() != "io+np+cc+fibers+fibercc" {
		t.Errorf("All().String() = %q", All().String())
	}
	if None().String() != "none" {
		t.Errorf("None().String() = %q", None().String())
	}
}

func TestConfigsCoverFig5(t *testing.T) {
	cfgs := Configs()
	if len(cfgs) != 4 {
		t.Fatalf("Configs = %d entries", len(cfgs))
	}
	if cfgs[0].Name != "unopt" || cfgs[3].Opts.Fibers != true {
		t.Error("Configs order wrong")
	}
}

func TestMustApplyPanicsOnInvalid(t *testing.T) {
	p := testProgram()
	// A store to an undeclared array is invalid and survives simplification
	// (a dead pure assignment would just be eliminated).
	p.Kernels[0].Body = []ir.Stmt{ir.St("ghost", ir.CI(0), ir.CI(1))}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustApply(p, All())
}

func TestCloneIndependence(t *testing.T) {
	p := testProgram()
	c := p.Clone()
	c.Kernels[0].Name = "changed"
	c.Arrays[0].Name = "changed"
	findPush(c.Kernels[0]).Mode = ir.PushCoop
	if p.Kernels[0].Name != "k" || p.Arrays[0].Name != "lvl" {
		t.Error("clone shares kernel/array metadata")
	}
	if findPush(p.Kernels[0]).Mode != ir.PushUnopt {
		t.Error("clone shares statements")
	}
}
