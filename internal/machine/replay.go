package machine

// AccessKind classifies a memory access for stall costing. The deferred SPMD
// scheduler records (addr, kind) pairs during concurrent task execution and
// replays them here in deterministic task order, so cache-state evolution —
// and therefore every level hit and every stall cycle — is identical to a
// serial run.
type AccessKind uint8

const (
	// AccPlain probes the hierarchy but exposes no stall (stores retire
	// through the write buffer; atomics charge their fixed cost separately).
	AccPlain AccessKind = iota
	// AccLoad is a scalar load or a software-gather lane: full load latency.
	AccLoad
	// AccGather is a hardware-gather lane: gather latency at the hit level.
	AccGather
	// AccStream is a unit-stride vector-load continuation lane: it stalls
	// only when the line is not already in L1 (the leading lane of the
	// vector pays AccLoad).
	AccStream
)

// ReplayAccess is the trace-replay entry point on the memory model: it runs
// one recorded access through the hierarchy on the given core, mutating tags
// exactly as a live access would, and returns the exposed stall in cycles
// under the given active-thread count. Live execution and deferred replay
// share this path, so costing is bit-identical between them by construction.
func (mm *MemModel) ReplayAccess(core int, addr int64, kind AccessKind, threads int) float64 {
	lvl := mm.Access(core, addr)
	switch kind {
	case AccLoad:
		return mm.cfg.LoadCost(lvl, threads)
	case AccGather:
		return mm.cfg.GatherCost(lvl, threads)
	case AccStream:
		if lvl != L1 {
			return mm.cfg.LoadCost(lvl, threads)
		}
	}
	return 0
}

// LineShift returns log2 of the cache line size, the granularity at which
// the deferred trace recorder may fold consecutive same-line accesses into
// one run-length word.
func (mm *MemModel) LineShift() uint { return mm.lineShift }

// RepeatHits advances the access counters for n guaranteed L1 hits without
// probing tags — the counter-only half of ReplayRepeat, for callers that
// charge stalls through a precomputed cost table.
func (mm *MemModel) RepeatHits(n int) {
	mm.Accesses += int64(n)
	mm.Hits[L1] += int64(n)
}

// ReplayRepeat accounts n back-to-back repeats of an access whose line the
// immediately preceding access installed: each repeat is a guaranteed L1 hit
// (nothing intervened to evict it), so no tag probe is needed. Hit counters
// advance exactly as n individual Access calls would, and the returned value
// is the per-repeat exposed stall — the caller accumulates it once per
// repeat so float summation stays bit-identical to an uncompressed replay.
func (mm *MemModel) ReplayRepeat(kind AccessKind, threads, n int) float64 {
	mm.Accesses += int64(n)
	mm.Hits[L1] += int64(n)
	switch kind {
	case AccLoad:
		return mm.cfg.LoadCost(L1, threads)
	case AccGather:
		return mm.cfg.GatherCost(L1, threads)
	}
	return 0
}
