package machine

import "testing"

func TestMemModelLevels(t *testing.T) {
	cfg := Intel8()
	mm := NewMemModel(cfg)

	// First touch misses to memory; second touch of the same line hits L1.
	if lvl := mm.Access(0, 0x1000); lvl != Mem {
		t.Errorf("cold access = %v, want Mem", lvl)
	}
	if lvl := mm.Access(0, 0x1004); lvl != L1 {
		t.Errorf("same-line access = %v, want L1", lvl)
	}
	// A different core has cold private caches but the line is now in L3.
	if lvl := mm.Access(1, 0x1000); lvl != L3 {
		t.Errorf("cross-core access = %v, want L3", lvl)
	}
}

func TestMemModelCapacityEviction(t *testing.T) {
	cfg := Intel8() // 32 KB L1 = 512 lines
	mm := NewMemModel(cfg)
	// Touch far more lines than fit in L1, then re-touch the first: it must
	// have been evicted from L1 (same direct-mapped set reused).
	n := (cfg.L1Size / cfg.LineSize) * 4
	for i := 0; i < n; i++ {
		mm.Access(0, int64(i*cfg.LineSize))
	}
	if lvl := mm.Access(0, 0); lvl == L1 {
		t.Error("line survived L1 despite 4x capacity sweep")
	}
}

func TestMemModelWorkingSetFitsL1(t *testing.T) {
	cfg := Intel8()
	mm := NewMemModel(cfg)
	// An 8 KB working set swept repeatedly should be ~all L1 hits after
	// warmup.
	lines := (8 << 10) / cfg.LineSize
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			mm.Access(0, int64(i*cfg.LineSize))
		}
	}
	if r := mm.HitRate(L1); r < 0.6 {
		t.Errorf("L1 hit rate for tiny working set = %v, want > 0.6", r)
	}
}

func TestMemModelReset(t *testing.T) {
	mm := NewMemModel(Intel8())
	mm.Access(0, 64)
	mm.Access(0, 64)
	mm.Reset()
	if mm.Accesses != 0 {
		t.Error("Reset did not clear counters")
	}
	if lvl := mm.Access(0, 64); lvl != Mem {
		t.Errorf("post-Reset access = %v, want Mem", lvl)
	}
}

func TestMemModelCoreWraps(t *testing.T) {
	mm := NewMemModel(Intel8())
	// Core indices beyond the physical count must not panic (task IDs can
	// exceed cores when oversubscribed).
	mm.Access(97, 128)
}

func TestHitRateAccounting(t *testing.T) {
	mm := NewMemModel(Intel8())
	mm.Access(0, 0)   // Mem
	mm.Access(0, 0)   // L1
	mm.Access(0, 4)   // L1
	mm.Access(0, 512) // Mem (different line)
	if mm.Accesses != 4 {
		t.Fatalf("Accesses = %d", mm.Accesses)
	}
	if mm.Hits[L1] != 2 || mm.Hits[Mem] != 2 {
		t.Errorf("hits = %v", mm.Hits)
	}
	if r := mm.HitRate(L1); r != 0.5 {
		t.Errorf("HitRate(L1) = %v", r)
	}
}

func TestAddrSpace(t *testing.T) {
	as := NewAddrSpace(4096)
	a := as.Alloc(100)
	b := as.Alloc(5000)
	c := as.Alloc(1)
	if a == 0 {
		t.Error("base address 0 is reserved")
	}
	if a%4096 != 0 || b%4096 != 0 || c%4096 != 0 {
		t.Error("allocations must be page aligned")
	}
	if b <= a || c <= b {
		t.Error("allocations must not overlap")
	}
	if b-a < 100 || c-b < 5000 {
		t.Error("allocations overlap requested sizes")
	}
	if as.Footprint() != (4096 + 8192 + 4096) {
		t.Errorf("Footprint = %d", as.Footprint())
	}
}

func TestAddrSpaceDefaultPage(t *testing.T) {
	as := NewAddrSpace(0)
	if as.Alloc(10)%4096 != 0 {
		t.Error("default page size should be 4K")
	}
}

func BenchmarkMemModelAccess(b *testing.B) {
	mm := NewMemModel(Intel8())
	for i := 0; i < b.N; i++ {
		mm.Access(i&7, int64(i*64%(1<<24)))
	}
}
