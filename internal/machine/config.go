// Package machine models the evaluation hardware: CPU core/SMT topology,
// the cache hierarchy, per-ISA memory access costs and frequency. It converts
// the instruction and memory-access streams produced by the SPMD engine into
// modeled execution time.
//
// The absolute cost constants are calibrated from the paper's own
// microbenchmarks (Table VI gather load-to-use latencies, Table II launch
// overheads) and public latency figures for the three evaluation CPUs and the
// Quadro P5000. Shapes — who wins, crossovers, scaling rolloffs — come from
// the measured instruction streams, lane masks and memory traces, not from
// these constants.
package machine

import (
	"fmt"

	"repro/internal/vec"
)

// Level identifies where a memory access was satisfied.
type Level uint8

const (
	L1 Level = iota
	L2
	L3
	Mem
	NumLevels
)

var levelNames = [...]string{L1: "L1", L2: "L2", L3: "L3", Mem: "Mem"}

func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return "level?"
}

// Config describes one machine. All latencies are in core cycles unless noted.
type Config struct {
	Name    string
	IsGPU   bool
	Cores   int
	SMTWays int     // hardware threads per core
	FreqGHz float64 // used to convert cycles to wall time

	// PreferredTarget is the ISA/width the paper uses on this machine.
	PreferredTarget vec.Target
	// DefaultTasks is the task count the paper launches on this machine.
	DefaultTasks int

	// IPC is the sustained scalar+vector issue rate of one hardware thread
	// with no memory stalls. Out-of-order server cores sustain ~3; Phi's
	// narrow cores ~1; a GPU SM warp-scheduler issues ~1 per cycle per
	// scheduler (4 schedulers are folded into SM accounting in gpusim).
	IPC float64

	// Cache sizes in bytes. L1 and L2 are per-core, L3 is shared.
	L1Size, L2Size, L3Size int
	LineSize               int

	// ScalarLoadCost is the effective per-access stall (cycles) for scalar
	// loads satisfied at each level; out-of-order overlap is folded in,
	// which is why L1/L2 are near zero on the big cores (Table VI:
	// Scalar8 ≈ 0.30 ns per word at L1 ≈ fully hidden).
	ScalarLoadCost [NumLevels]float64

	// GatherLaneCost is the effective per-lane stall (cycles) for hardware
	// gather instructions at each level. A gather cannot retire until its
	// slowest lane arrives, which is why per-word gather cost exceeds the
	// scalar cost on out-of-order cores (Table VI: AVX2 1.02 ns vs Scalar8
	// 0.30 ns at L1).
	GatherLaneCost [NumLevels]float64

	// AtomicCycles is the latency of one hardware atomic RMW as seen by
	// the issuing thread.
	AtomicCycles float64

	// AtomicSerialCycles is the system-wide serialization throughput cost
	// of same-address atomics (the worklist tail). Zero means equal to
	// AtomicCycles. GPUs resolve same-address atomics in the L2 at a few
	// cycles per op, far below the per-thread latency — the reason massive
	// warp counts can still share one worklist counter.
	AtomicSerialCycles float64

	// StallHideFactor scales exposed memory stalls (default 1 when zero).
	// The GPU sets it well below 1: with up to 64 resident warps per SM the
	// warp scheduler hides most memory latency, which is exactly why GPUs
	// tolerate gathers that stall CPUs (Section III-D).
	StallHideFactor float64

	// ContentionFactor inflates L3/Mem stall costs as hardware threads
	// fill up: cost *= 1 + ContentionFactor*(activeThreads-1)/(maxThreads-1).
	// Calibrated from the paper's observation that AMD L3 latency rose
	// 2.30x from 16 to 32 threads (Section IV-D2).
	ContentionFactor float64

	// BarrierBaseCycles+BarrierPerTaskCycles model an in-kernel barrier.
	BarrierBaseCycles    float64
	BarrierPerTaskCycles float64

	// GPU-only: streaming multiprocessors, resident warps per SM, and PCIe
	// bandwidth for host<->device transfers.
	SMs          int
	WarpsPerSM   int
	PCIeGBs      float64
	GPUMemGB     float64
	FaultCostNS  float64 // cost of one demand-paging fault (UVM far-fault / CPU major fault)
	MinorFaultNS float64 // CPU minor fault / page-table fill
	PageSize     int     // paging granularity in bytes
}

// HWThreads returns the total hardware thread count.
func (c *Config) HWThreads() int { return c.Cores * c.SMTWays }

// CyclesToNS converts modeled cycles to nanoseconds.
func (c *Config) CyclesToNS(cycles float64) float64 { return cycles / c.FreqGHz }

// NSToCycles converts nanoseconds to modeled cycles.
func (c *Config) NSToCycles(ns float64) float64 { return ns * c.FreqGHz }

func (c *Config) String() string {
	return fmt.Sprintf("%s (%dc/%dt @ %.1fGHz, %v)",
		c.Name, c.Cores, c.HWThreads(), c.FreqGHz, c.PreferredTarget)
}

// Intel8 models the Xeon Silver 4108: 8 cores, 2-way SMT, AVX512, 1.8 GHz
// base. The paper launches 16 tasks with the avx512-i32x16 target here.
func Intel8() *Config {
	return &Config{
		Name:            "intel-xeon-4108",
		Cores:           8,
		SMTWays:         2,
		FreqGHz:         1.8,
		PreferredTarget: vec.TargetAVX512x16,
		DefaultTasks:    16,
		IPC:             3.0,
		L1Size:          32 << 10,
		L2Size:          1 << 20,
		L3Size:          11 << 20,
		LineSize:        64,
		// Table VI (Intel column), converted at 1.8 GHz and de-rated for
		// out-of-order overlap. The firm calibration point is L1, where the
		// microcoded gather loses to scalar loads (1.02 vs 0.30 ns/word);
		// at deeper levels the gather's 16-wide memory-level parallelism
		// makes its effective per-lane cost competitive or better.
		ScalarLoadCost: [NumLevels]float64{0.5, 2.0, 8.0, 55.0},
		GatherLaneCost: [NumLevels]float64{1.7, 1.8, 3.5, 18.0},
		AtomicCycles:   22,
		// AMD showed 2.30x L3 inflation at full threads; Intel's mesh is a
		// bit milder.
		ContentionFactor:     1.1,
		BarrierBaseCycles:    400,
		BarrierPerTaskCycles: 60,
		MinorFaultNS:         250,
		FaultCostNS:          3500, // major fault to fast swap
		PageSize:             4 << 10,
	}
}

// AMD32 models the EPYC 7502P: 32 cores, 2-way SMT, AVX2, 2.5 GHz. The paper
// launches 64 tasks with the avx2-i32x8 target here.
func AMD32() *Config {
	return &Config{
		Name:                 "amd-epyc-7502p",
		Cores:                32,
		SMTWays:              2,
		FreqGHz:              2.5,
		PreferredTarget:      vec.TargetAVX2x8,
		DefaultTasks:         64,
		IPC:                  3.0,
		L1Size:               32 << 10,
		L2Size:               512 << 10,
		L3Size:               128 << 20,
		LineSize:             64,
		ScalarLoadCost:       [NumLevels]float64{0.5, 2.2, 10.0, 70.0},
		GatherLaneCost:       [NumLevels]float64{1.9, 2.0, 4.5, 24.0},
		AtomicCycles:         25,
		ContentionFactor:     1.3, // measured 2.30x L3 latency 16->32 threads
		BarrierBaseCycles:    500,
		BarrierPerTaskCycles: 50,
		MinorFaultNS:         250,
		FaultCostNS:          3500,
		PageSize:             4 << 10,
	}
}

// Phi72 models the Xeon Phi 7290: 72 cores, 4-way SMT, AVX512, 1.5 GHz,
// narrow in-order-ish cores that cannot hide scalar load latency (Table VI:
// Scalar16 at 1.51 ns/word vs AVX512 gather 0.98 ns — the only machine where
// the gather wins).
func Phi72() *Config {
	return &Config{
		Name:            "xeon-phi-7290",
		Cores:           72,
		SMTWays:         4,
		FreqGHz:         1.5,
		PreferredTarget: vec.TargetAVX512x16,
		DefaultTasks:    288,
		IPC:             1.0,
		L1Size:          32 << 10,
		L2Size:          512 << 10,
		L3Size:          16 << 20, // MCDRAM-as-cache stand-in
		LineSize:        64,
		// Weak OoO: scalar loads barely overlap, so scalar per-word cost
		// exceeds the gather's per-lane cost at L1.
		ScalarLoadCost:       [NumLevels]float64{2.3, 6.0, 18.0, 120.0},
		GatherLaneCost:       [NumLevels]float64{1.5, 3.0, 8.0, 45.0},
		AtomicCycles:         40,
		ContentionFactor:     2.2, // 72c x 4t saturates MCDRAM: Fig 10 shows 0.58x
		BarrierBaseCycles:    900,
		BarrierPerTaskCycles: 40,
		MinorFaultNS:         400,
		FaultCostNS:          5000,
		PageSize:             4 << 10,
	}
}

// QuadroP5000 models the GPU: 20 SMs, 32-wide warps, up to 64 resident warps
// per SM, GDDR5X, PCIe 3.0 x16 (~12 GB/s effective), 16 GB device memory,
// and UVM far-faults costing ~45 us per migrated page group.
func QuadroP5000() *Config {
	return &Config{
		Name:  "quadro-p5000",
		IsGPU: true,
		Cores: 20, // SMs
		// Each modeled task stands for a group of resident warps sharing a
		// warp-scheduler slot; the full 64-warp residency shows up as
		// latency hiding (StallHideFactor), not as 1280 modeled contexts.
		SMTWays:         8,
		FreqGHz:         1.6,
		PreferredTarget: vec.TargetGPU32,
		DefaultTasks:    20 * 8,
		IPC:             4.0, // 4 warp schedulers per SM
		StallHideFactor: 0.12,
		L1Size:          48 << 10,
		L2Size:          2 << 20, // device-wide L2 treated per-SM slice
		L3Size:          0,
		LineSize:        128,
		// High raw latency, but warp-level SMT hides most of it; gpusim
		// divides exposed stall by resident-warp occupancy.
		ScalarLoadCost:       [NumLevels]float64{8, 30, 30, 350},
		GatherLaneCost:       [NumLevels]float64{4, 20, 20, 300},
		AtomicCycles:         30,
		ContentionFactor:     0.4,
		BarrierBaseCycles:    600,
		BarrierPerTaskCycles: 2,
		SMs:                  20,
		WarpsPerSM:           64,
		AtomicSerialCycles:   4,
		PCIeGBs:              12.0,
		GPUMemGB:             16.0,
		FaultCostNS:          45000, // UVM far-fault + migration
		MinorFaultNS:         45000,
		PageSize:             64 << 10, // UVM migration granularity
	}
}

// ARM64 models a Graviton2-class ARM server (extension beyond the paper,
// which defers NEON evaluation to future work): 64 Neoverse-N1 cores, no
// SMT, 2.5 GHz, 4-wide NEON without gathers, scatters or mask registers.
func ARM64() *Config {
	return &Config{
		Name:            "arm-graviton2",
		Cores:           64,
		SMTWays:         1,
		FreqGHz:         2.5,
		PreferredTarget: vec.TargetNEON4,
		DefaultTasks:    64,
		IPC:             3.0,
		L1Size:          64 << 10,
		L2Size:          1 << 20,
		L3Size:          32 << 20,
		LineSize:        64,
		ScalarLoadCost:  [NumLevels]float64{0.5, 2.0, 9.0, 65.0},
		// No hardware gather: the emulated path uses scalar loads, so this
		// table only covers the (unused) native-gather case symmetrically.
		GatherLaneCost:       [NumLevels]float64{0.5, 2.0, 9.0, 65.0},
		AtomicCycles:         28, // LSE atomics
		ContentionFactor:     1.0,
		BarrierBaseCycles:    500,
		BarrierPerTaskCycles: 45,
		MinorFaultNS:         250,
		FaultCostNS:          3500,
		PageSize:             4 << 10,
	}
}

// ByName returns a predefined machine configuration.
func ByName(name string) (*Config, error) {
	switch name {
	case "intel", "intel8", "xeon":
		return Intel8(), nil
	case "amd", "amd32", "epyc":
		return AMD32(), nil
	case "phi", "phi72", "knl":
		return Phi72(), nil
	case "gpu", "p5000", "quadro":
		return QuadroP5000(), nil
	case "arm", "arm64", "graviton":
		return ARM64(), nil
	}
	return nil, fmt.Errorf("machine: unknown machine %q (want intel|amd|phi|gpu|arm)", name)
}

// SerialAtomicCost returns the serialization throughput cost of one
// contended atomic.
func (c *Config) SerialAtomicCost() float64 {
	if c.AtomicSerialCycles > 0 {
		return c.AtomicSerialCycles
	}
	return c.AtomicCycles
}

// LatencyScale returns the multiplier applied to L3/Mem stall costs when
// active hardware threads out of the machine's total are running.
func (c *Config) LatencyScale(activeThreads int) float64 {
	total := c.HWThreads()
	if activeThreads <= 1 || total <= 1 {
		return 1
	}
	if activeThreads > total {
		activeThreads = total
	}
	return 1 + c.ContentionFactor*float64(activeThreads-1)/float64(total-1)
}

// LoadCost returns the stall cost in cycles of a scalar load satisfied at
// level lvl with the given active-thread contention.
func (c *Config) LoadCost(lvl Level, activeThreads int) float64 {
	cost := c.ScalarLoadCost[lvl]
	if lvl >= L3 {
		cost *= c.LatencyScale(activeThreads)
	}
	return cost
}

// GatherCost returns the stall cost in cycles of one lane of a hardware
// gather satisfied at level lvl with the given contention.
func (c *Config) GatherCost(lvl Level, activeThreads int) float64 {
	cost := c.GatherLaneCost[lvl]
	if lvl >= L3 {
		cost *= c.LatencyScale(activeThreads)
	}
	return cost
}

// UnitStrideBenefit estimates how much cheaper one W-lane unit-stride
// vector load is than one W-lane hardware gather satisfied at the same
// cache level: the ratio of the gather's total lane stalls to the
// unit-stride load's stall (one scalar-cost leading access — the trailing
// lanes stream from the already-touched line and stall nothing, which is
// how the memory model accounts AccStream hits). Values above 1 mean the
// machine rewards the SELL-C-σ dense layout; the layout policy uses the L1
// figure because slice cells are consumed sequentially and stay resident.
func (c *Config) UnitStrideBenefit(width int, lvl Level) float64 {
	if width <= 0 {
		return 1
	}
	stride := c.ScalarLoadCost[lvl]
	if stride <= 0 {
		// Fully hidden scalar loads: any non-zero gather cost is a win;
		// report the raw gather stall as the benefit.
		return 1 + c.GatherLaneCost[lvl]*float64(width)
	}
	return c.GatherLaneCost[lvl] * float64(width) / stride
}

// BarrierCost returns the modeled cost in cycles of one barrier across tasks.
func (c *Config) BarrierCost(tasks int) float64 {
	return c.BarrierBaseCycles + c.BarrierPerTaskCycles*float64(tasks)
}

// TransferNS returns the host<->device transfer time for n bytes, zero for
// CPUs.
func (c *Config) TransferNS(bytes int64) float64 {
	if !c.IsGPU || c.PCIeGBs <= 0 {
		return 0
	}
	return float64(bytes) / c.PCIeGBs // bytes / (GB/s) == ns
}
