package machine

import (
	"testing"

	"repro/internal/vec"
)

func TestPredefinedMachines(t *testing.T) {
	intel, amd, phi, gpu := Intel8(), AMD32(), Phi72(), QuadroP5000()
	if intel.HWThreads() != 16 {
		t.Errorf("Intel threads = %d, want 16", intel.HWThreads())
	}
	if amd.HWThreads() != 64 {
		t.Errorf("AMD threads = %d, want 64", amd.HWThreads())
	}
	if phi.HWThreads() != 288 {
		t.Errorf("Phi threads = %d, want 288", phi.HWThreads())
	}
	if intel.PreferredTarget != vec.TargetAVX512x16 {
		t.Error("Intel target should be avx512-i32x16")
	}
	if amd.PreferredTarget != vec.TargetAVX2x8 {
		t.Error("AMD target should be avx2-i32x8")
	}
	if !gpu.IsGPU || gpu.SMs != 20 || gpu.PreferredTarget != vec.TargetGPU32 {
		t.Error("GPU config wrong")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"intel", "amd", "phi", "gpu", "epyc", "p5000"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("pdp11"); err == nil {
		t.Error("ByName should reject unknown machines")
	}
}

func TestCycleConversion(t *testing.T) {
	c := Intel8() // 1.8 GHz
	ns := c.CyclesToNS(1800)
	if ns != 1000 {
		t.Errorf("1800 cycles @1.8GHz = %v ns, want 1000", ns)
	}
	if got := c.NSToCycles(ns); got != 1800 {
		t.Errorf("round trip = %v", got)
	}
}

func TestLatencyScaleMonotone(t *testing.T) {
	c := AMD32()
	prev := 0.0
	for threads := 1; threads <= c.HWThreads(); threads *= 2 {
		s := c.LatencyScale(threads)
		if s < prev {
			t.Fatalf("LatencyScale not monotone at %d threads: %v < %v", threads, s, prev)
		}
		prev = s
	}
	if c.LatencyScale(1) != 1 {
		t.Error("single thread must have no contention")
	}
	full := c.LatencyScale(c.HWThreads())
	if full < 2.0 || full > 2.6 {
		t.Errorf("AMD full-thread L3 inflation = %vx, want ~2.3x (paper measurement)", full)
	}
	// Clamps above the thread count.
	if c.LatencyScale(10*c.HWThreads()) != full {
		t.Error("LatencyScale should clamp at HWThreads")
	}
}

func TestLoadAndGatherCosts(t *testing.T) {
	c := Intel8()
	// Deeper levels cost strictly more.
	for lvl := L1; lvl < Mem; lvl++ {
		if c.LoadCost(lvl, 1) >= c.LoadCost(lvl+1, 1) {
			t.Errorf("scalar cost not increasing at %v", lvl)
		}
		if c.GatherCost(lvl, 1) >= c.GatherCost(lvl+1, 1) {
			t.Errorf("gather cost not increasing at %v", lvl)
		}
	}
	// On the big OoO cores the gather per-lane cost exceeds the scalar
	// per-word cost (the paper's Table VI observation)...
	if c.GatherCost(L1, 1) <= c.LoadCost(L1, 1) {
		t.Error("Intel gather should cost more per word than scalar at L1")
	}
	// ...while on Phi the gather wins at L1 (the only machine where it does).
	phi := Phi72()
	if phi.GatherCost(L1, 1) >= phi.LoadCost(L1, 1) {
		t.Error("Phi gather should cost less per word than scalar at L1")
	}
	// Contention only affects L3 and beyond.
	if c.LoadCost(L1, 16) != c.LoadCost(L1, 1) {
		t.Error("L1 cost must not see contention")
	}
	if c.LoadCost(Mem, 16) <= c.LoadCost(Mem, 1) {
		t.Error("Mem cost must rise with contention")
	}
}

func TestBarrierCost(t *testing.T) {
	c := Intel8()
	if c.BarrierCost(16) <= c.BarrierCost(1) {
		t.Error("barrier cost should grow with tasks")
	}
}

func TestTransferNS(t *testing.T) {
	gpu := QuadroP5000()
	cpu := Intel8()
	if cpu.TransferNS(1<<30) != 0 {
		t.Error("CPU transfers must be free")
	}
	got := gpu.TransferNS(12 << 30) // 12 GB at 12 GB/s ~ 1 s
	if got < 0.9e9 || got > 1.2e9 {
		t.Errorf("GPU transfer of 12GB = %v ns, want ~1e9", got)
	}
}

func TestConfigString(t *testing.T) {
	s := Intel8().String()
	if s == "" {
		t.Error("empty String")
	}
	if L3.String() != "L3" || Mem.String() != "Mem" {
		t.Error("level names wrong")
	}
}
