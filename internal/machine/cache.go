package machine

// MemModel is a lightweight cache-hierarchy simulator: direct-mapped L1 and
// L2 per core plus a shared L3, probed with synthetic byte addresses. It
// exists to give the cost model locality — gather cost depends on which level
// each lane's address hits (Table VI), and optimizations that change
// iteration order (Fibers, Section IV-A2) change hit rates.
//
// Direct-mapped tag arrays keep a probe at a handful of nanoseconds so whole
// benchmark graphs can be simulated. Associativity is deliberately ignored:
// conflict detail is irrelevant to the paper's shapes.
type MemModel struct {
	cfg *Config
	l1  []cacheArr // per core
	l2  []cacheArr // per core
	l3  cacheArr   // shared (absent when L3Size == 0)

	lineShift uint

	// Counters.
	Hits     [NumLevels]int64
	Accesses int64
}

type cacheArr struct {
	tags []int64
	mask int64
}

func newCacheArr(sizeBytes, lineSize int) cacheArr {
	sets := sizeBytes / lineSize
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two for mask indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	tags := make([]int64, p)
	for i := range tags {
		tags[i] = -1
	}
	return cacheArr{tags: tags, mask: int64(p - 1)}
}

func (c *cacheArr) probe(lineAddr int64) bool {
	slot := &c.tags[lineAddr&c.mask]
	if *slot == lineAddr {
		return true
	}
	*slot = lineAddr
	return false
}

// NewMemModel builds a memory model for the given machine.
func NewMemModel(cfg *Config) *MemModel {
	mm := &MemModel{cfg: cfg}
	ls := cfg.LineSize
	if ls == 0 {
		ls = 64
	}
	for mm.lineShift = 0; 1<<mm.lineShift < ls; mm.lineShift++ {
	}
	mm.l1 = make([]cacheArr, cfg.Cores)
	mm.l2 = make([]cacheArr, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		mm.l1[i] = newCacheArr(cfg.L1Size, ls)
		mm.l2[i] = newCacheArr(cfg.L2Size, ls)
	}
	if cfg.L3Size > 0 {
		mm.l3 = newCacheArr(cfg.L3Size, ls)
	}
	return mm
}

// Access simulates one data access by the given core and returns the level
// that satisfied it, updating all levels on the way. The L1-hit check is kept
// small enough to inline into callers' lane loops (the single hottest path in
// the whole simulator); everything past an L1 miss is outlined in accessMiss.
func (mm *MemModel) Access(core int, addr int64) Level {
	mm.Accesses++
	if core >= len(mm.l1) {
		core %= len(mm.l1)
	}
	line := addr >> mm.lineShift
	c := &mm.l1[core]
	if c.tags[line&c.mask] == line {
		mm.Hits[L1]++
		return L1
	}
	return mm.accessMiss(core, line)
}

// L1View exposes core's direct-mapped L1 tag array and index mask so a fused
// lane loop can perform the hit probe inline — Access itself is beyond the
// cross-package inlining budget, and the probe dominates the simulator's
// wall-clock. A caller that finds tags[(addr>>LineShift())&mask] == that line
// must account the hit with RepeatHits(1); any other outcome must go through
// Access, which re-probes and installs. The returned slice is the live tag
// store and must be treated as read-only; Restore and Reset rewrite it in
// place, so views must not be cached across snapshot boundaries.
func (mm *MemModel) L1View(core int) ([]int64, int64) {
	if core >= len(mm.l1) {
		core %= len(mm.l1)
	}
	c := &mm.l1[core]
	return c.tags, c.mask
}

// accessMiss is Access past an L1 miss: install the line in L1, then walk the
// outer levels.
func (mm *MemModel) accessMiss(core int, line int64) Level {
	c := &mm.l1[core]
	c.tags[line&c.mask] = line
	if mm.l2[core].probe(line) {
		mm.Hits[L2]++
		return L2
	}
	if mm.l3.tags != nil && mm.l3.probe(line) {
		mm.Hits[L3]++
		return L3
	}
	mm.Hits[Mem]++
	return Mem
}

// Reset clears all cache contents and counters.
func (mm *MemModel) Reset() {
	for i := range mm.l1 {
		for j := range mm.l1[i].tags {
			mm.l1[i].tags[j] = -1
		}
		for j := range mm.l2[i].tags {
			mm.l2[i].tags[j] = -1
		}
	}
	for j := range mm.l3.tags {
		mm.l3.tags[j] = -1
	}
	mm.Hits = [NumLevels]int64{}
	mm.Accesses = 0
}

// MemSnapshot is a reusable deep copy of a MemModel's tag arrays and
// counters. The checkpoint layer restores it on rollback so the re-executed
// iterations see exactly the cache state of the original execution —
// hit/miss sequences, and therefore modeled stall cycles, replay
// bit-identically. Buffers are reused across Snapshot calls, so steady-state
// checkpointing allocates nothing.
type MemSnapshot struct {
	l1, l2   [][]int64
	l3       []int64
	hits     [NumLevels]int64
	accesses int64
}

func copyTags(dst *[]int64, src []int64) {
	if cap(*dst) < len(src) {
		*dst = make([]int64, len(src))
	}
	*dst = (*dst)[:len(src)]
	copy(*dst, src)
}

// Snapshot deep-copies the hierarchy's tags and counters into s.
func (mm *MemModel) Snapshot(s *MemSnapshot) {
	if len(s.l1) != len(mm.l1) {
		s.l1 = make([][]int64, len(mm.l1))
		s.l2 = make([][]int64, len(mm.l2))
	}
	for i := range mm.l1 {
		copyTags(&s.l1[i], mm.l1[i].tags)
		copyTags(&s.l2[i], mm.l2[i].tags)
	}
	copyTags(&s.l3, mm.l3.tags)
	s.hits = mm.Hits
	s.accesses = mm.Accesses
}

// Restore rewinds the hierarchy to a previous Snapshot of the same model.
func (mm *MemModel) Restore(s *MemSnapshot) {
	for i := range mm.l1 {
		copy(mm.l1[i].tags, s.l1[i])
		copy(mm.l2[i].tags, s.l2[i])
	}
	copy(mm.l3.tags, s.l3)
	mm.Hits = s.hits
	mm.Accesses = s.accesses
}

// MemCounters is a value snapshot of the hierarchy's access counters; the
// observability layer subtracts consecutive snapshots to get per-iteration
// hit/miss deltas.
type MemCounters struct {
	Accesses int64
	Hits     [NumLevels]int64
}

// Counters snapshots the current access counters.
func (mm *MemModel) Counters() MemCounters {
	return MemCounters{Accesses: mm.Accesses, Hits: mm.Hits}
}

// Sub returns c - o field-wise.
func (c MemCounters) Sub(o MemCounters) MemCounters {
	c.Accesses -= o.Accesses
	for i := range c.Hits {
		c.Hits[i] -= o.Hits[i]
	}
	return c
}

// HitRate returns the fraction of accesses satisfied at the given level.
func (mm *MemModel) HitRate(lvl Level) float64 {
	if mm.Accesses == 0 {
		return 0
	}
	return float64(mm.Hits[lvl]) / float64(mm.Accesses)
}

// AddrSpace hands out non-overlapping synthetic base addresses for the data
// arrays a kernel touches, so cache and paging simulation see a realistic
// layout. Bases are page-aligned and allocation is append-only.
type AddrSpace struct {
	next     int64
	pageSize int64
}

// NewAddrSpace creates an address space with the given page alignment.
func NewAddrSpace(pageSize int) *AddrSpace {
	if pageSize <= 0 {
		pageSize = 4 << 10
	}
	return &AddrSpace{next: int64(pageSize), pageSize: int64(pageSize)}
}

// Alloc reserves sizeBytes and returns the base address.
func (as *AddrSpace) Alloc(sizeBytes int64) int64 {
	base := as.next
	n := (sizeBytes + as.pageSize - 1) / as.pageSize * as.pageSize
	as.next += n
	return base
}

// Footprint returns the total bytes allocated so far.
func (as *AddrSpace) Footprint() int64 { return as.next - as.pageSize }

// Mark returns the current allocation cursor. Pair with Rewind so a rolled-
// back execution that re-allocates the same sequence of arrays (e.g. a
// re-executed worklist growth) receives identical synthetic base addresses,
// keeping cache simulation bit-identical to the original execution.
func (as *AddrSpace) Mark() int64 { return as.next }

// Rewind moves the allocation cursor back to a previous Mark, releasing every
// allocation made after it.
func (as *AddrSpace) Rewind(mark int64) { as.next = mark }

// Reset releases every allocation, returning the space to its post-New state
// so a reused engine hands out the same base addresses a fresh one would.
func (as *AddrSpace) Reset() { as.next = as.pageSize }
