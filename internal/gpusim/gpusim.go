// Package gpusim runs the same compiled EGACS kernels on the GPU machine
// model — 32-wide warps on 20 SMs with occupancy-based latency hiding — and
// accounts host<->device transfers, enabling the paper's direct CPU-vs-GPU
// comparison (Fig. 9) and the unified-memory oversubscription study
// (Table IX). The GPU backend of the original compiler emits CUDA from the
// same IR; here the same closure-compiled kernels execute at warp width.
package gpusim

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/spmd"
	"repro/internal/vmem"
)

// Options control a GPU run.
type Options struct {
	// IncludeTransfer adds PCIe transfer time for inputs and results
	// (Fig. 9's default; the "No Data Transfer" series clears it).
	IncludeTransfer bool
	// PhysBytes, when positive, limits device memory and attaches the UVM
	// paging model (Table IX). Zero means all data fits.
	PhysBytes int64
	// Src is the BFS/SSSP source.
	Src int32
	// Tasks overrides the modeled warp-context count (0 = default).
	Tasks int
}

// Result augments a core result with GPU-specific accounting.
type Result struct {
	*core.Result
	TransferMS float64
	Pager      *vmem.Pager
}

// Run executes a benchmark on the GPU model. The graph must be prepared
// (core.PrepareGraph).
func Run(b *kernels.Benchmark, g *graph.CSR, o Options) (*Result, error) {
	m := machine.QuadroP5000()
	cuda := spmd.CUDA
	cfg := core.Config{
		Machine: m,
		Tasks:   o.Tasks,
		Src:     o.Src,
		TaskSys: &cuda,
	}
	var pager *vmem.Pager
	if o.PhysBytes > 0 {
		pager = vmem.New(m.PageSize, o.PhysBytes, m.FaultCostNS)
		cfg.Pager = pager
	}
	res, err := core.Run(b, g, cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{Result: res, Pager: pager}
	if o.IncludeTransfer {
		// Inputs (graph + algorithm state) go down; result arrays come
		// back. Node-sized outputs dominate the return leg.
		in := res.Instance.FootprintBytes()
		ret := int64(g.NumNodes()) * 4
		res.Engine.AddTransferBytes(in + ret)
		out.TransferMS = m.TransferNS(in+ret) / 1e6
		out.TimeMS = res.Engine.TimeMS()
	}
	return out, nil
}

// CPUWithMemLimit runs a benchmark on a CPU model with limited physical
// memory (the cgroups condition of Table IX).
func CPUWithMemLimit(b *kernels.Benchmark, g *graph.CSR, m *machine.Config, physBytes int64, src int32) (*core.Result, *vmem.Pager, error) {
	pager := vmem.New(m.PageSize, physBytes, m.FaultCostNS)
	res, err := core.Run(b, g, core.Config{Machine: m, Pager: pager, Src: src})
	return res, pager, err
}
