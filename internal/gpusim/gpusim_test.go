package gpusim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
)

func bfs(t *testing.T) *kernels.Benchmark {
	t.Helper()
	b, err := kernels.ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGPURunsAndVerifies(t *testing.T) {
	g := graph.RMAT(9, 8, 16, 3)
	b := bfs(t)
	src := g.MaxDegreeNode()
	res, err := Run(b, g, Options{Src: src})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(b, g, res.Result); err != nil {
		t.Fatal(err)
	}
	if res.TimeMS <= 0 {
		t.Error("no modeled time")
	}
	if res.Pager != nil {
		t.Error("pager attached without memory limit")
	}
}

func TestTransferAccounting(t *testing.T) {
	g := graph.Road(24, 24, 16, 4)
	b := bfs(t)
	noT, err := Run(b, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	withT, err := Run(b, g, Options{IncludeTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	if withT.TransferMS <= 0 {
		t.Fatal("no transfer time recorded")
	}
	diff := withT.TimeMS - noT.TimeMS
	if diff < withT.TransferMS*0.99 || diff > withT.TransferMS*1.01 {
		t.Errorf("transfer accounting off: diff %v vs transfer %v", diff, withT.TransferMS)
	}
}

func TestGPULatencyHiding(t *testing.T) {
	// The GPU machine must declare substantial latency hiding.
	m := machine.QuadroP5000()
	if m.StallHideFactor <= 0 || m.StallHideFactor >= 0.5 {
		t.Errorf("StallHideFactor = %v, want deep hiding", m.StallHideFactor)
	}
}

func TestUVMOversubscriptionCatastrophic(t *testing.T) {
	g := graph.Road(48, 48, 16, 5)
	b := bfs(t)
	src := g.MaxDegreeNode()
	full, err := Run(b, g, Options{Src: src})
	if err != nil {
		t.Fatal(err)
	}
	foot := full.Instance.FootprintBytes()
	half, err := Run(b, g, Options{Src: src, PhysBytes: foot / 2})
	if err != nil {
		t.Fatal(err)
	}
	if half.Pager == nil || half.Pager.Faults == 0 {
		t.Fatal("no faults under oversubscription")
	}
	slow := half.TimeMS / full.TimeMS
	if slow < 5 {
		t.Errorf("GPU 50%%-memory slowdown only %.1fx; UVM collapse expected", slow)
	}
	// Correctness survives paging.
	if err := core.Verify(b, g, half.Result); err != nil {
		t.Fatal(err)
	}
}

func TestCPUMemLimitGraceful(t *testing.T) {
	g := graph.Road(48, 48, 16, 5)
	b := bfs(t)
	src := g.MaxDegreeNode()
	intel := machine.Intel8()
	full, err := core.Run(b, g, core.Config{Machine: intel, Src: src})
	if err != nil {
		t.Fatal(err)
	}
	foot := full.Instance.FootprintBytes()
	limited, pager, err := CPUWithMemLimit(b, g, intel, foot/2, src)
	if err != nil {
		t.Fatal(err)
	}
	if pager.Faults == 0 {
		t.Fatal("no CPU faults under limit")
	}
	cpuSlow := limited.TimeMS / full.TimeMS
	if cpuSlow < 1 {
		t.Errorf("limited memory should not speed things up: %v", cpuSlow)
	}
	// The GPU's collapse must dwarf the CPU's degradation on the same
	// workload and budget fraction (Table IX's core claim).
	gpuFull, err := Run(b, g, Options{Src: src})
	if err != nil {
		t.Fatal(err)
	}
	gpuHalf, err := Run(b, g, Options{Src: src, PhysBytes: gpuFull.Instance.FootprintBytes() / 2})
	if err != nil {
		t.Fatal(err)
	}
	gpuSlow := gpuHalf.TimeMS / gpuFull.TimeMS
	if gpuSlow < 2*cpuSlow {
		t.Errorf("GPU slowdown %.1fx not far worse than CPU %.1fx", gpuSlow, cpuSlow)
	}
}

func TestGPUFasterThanSerialCPU(t *testing.T) {
	// Sanity: the modeled GPU should beat the serial CPU build easily.
	g := graph.Random(4096, 32768, 16, 7)
	b := bfs(t)
	src := g.MaxDegreeNode()
	gpu, err := Run(b, g, Options{IncludeTransfer: true, Src: src})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := core.Run(b, g, func() core.Config {
		c := core.SerialConfig(machine.Intel8())
		c.Src = src
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	if gpu.TimeMS >= serial.TimeMS {
		t.Errorf("GPU %.3f ms not faster than serial CPU %.3f ms", gpu.TimeMS, serial.TimeMS)
	}
}
