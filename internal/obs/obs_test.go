package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestExportValidateRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.Complete(ProcModeled, TidEngine, "launch", 0, 12.5)
	tr.CompleteArg(ProcModeled, TidTask0, "bfs", 12.5, 3.25, "stall_cycles", 7)
	tr.Counter(ProcModeled, TidPipe, "frontier", 15.75, 42)
	tr.Instant(ProcModeled, TidPipe, "worklist-swap", 16, "frontier", 42)
	tr.Complete(ProcHost, TidHost, "launch", 100, 50)

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if err := Validate(out); err != nil {
		t.Fatalf("own export fails validation: %v", err)
	}

	// The export must be plain JSON a generic decoder agrees with.
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 5 events + metadata (2 process names, 4 distinct tracks).
	if len(doc.TraceEvents) != 5+6 {
		t.Errorf("traceEvents = %d, want 11", len(doc.TraceEvents))
	}
	// Metadata precedes events and is sorted by (pid, tid).
	if doc.TraceEvents[0]["ph"] != "M" || doc.TraceEvents[0]["name"] != "process_name" {
		t.Errorf("first entry is not process metadata: %v", doc.TraceEvents[0])
	}
	s := string(out)
	for _, want := range []string{
		`"engine"`, `"pipe-loop"`, `"task 0"`, `"host-scheduler"`,
		`"modeled (simulated time)"`, `"host (wall time)"`,
		`"args":{"stall_cycles":7}`, `"s":"t"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("export missing %s", want)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":     `{"traceEvents":[`,
		"no events":    `{"foo":1}`,
		"bad phase":    `{"traceEvents":[{"name":"x","ph":"Q","pid":1,"tid":0,"ts":0}]}`,
		"empty name":   `{"traceEvents":[{"name":"","ph":"X","pid":1,"tid":0,"ts":0,"dur":1}]}`,
		"missing ts":   `{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":0,"dur":1}]}`,
		"negative dur": `{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":0,"ts":0,"dur":-1}]}`,
		"string pid":   `{"traceEvents":[{"name":"x","ph":"i","pid":"a","tid":0,"ts":0}]}`,
	}
	for label, data := range cases {
		if Validate([]byte(data)) == nil {
			t.Errorf("%s: Validate accepted %s", label, data)
		}
	}
	if err := Validate([]byte(`{"traceEvents":[]}`)); err != nil {
		t.Errorf("empty traceEvents should validate: %v", err)
	}
}

func TestTracerDropsWhenFull(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Complete(ProcModeled, TidEngine, "e", float64(i), 1)
	}
	if tr.Len() != 2 {
		t.Errorf("len = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped())
	}
	// The retained events are the first two — recording never reallocates.
	if evs := tr.Events(); evs[0].Ts != 0 || evs[1].Ts != 1 {
		t.Errorf("retained events: %+v", evs)
	}
}

func TestTracerRecordPathDoesNotAllocate(t *testing.T) {
	tr := NewTracer(1 << 12)
	per := testing.AllocsPerRun(200, func() {
		tr.Complete(ProcModeled, TidEngine, "launch", 1, 2)
		tr.CompleteArg(ProcModeled, TidTask0, "seg", 3, 4, "stall_cycles", 5)
		tr.Counter(ProcModeled, TidPipe, "frontier", 5, 6)
		tr.Instant(ProcModeled, TidPipe, "worklist-swap", 7, "frontier", 8)
	})
	if per != 0 {
		t.Errorf("record path allocates %v times per batch, want 0", per)
	}
}

func TestModeledEventsFiltersHostClock(t *testing.T) {
	tr := NewTracer(8)
	tr.Complete(ProcHost, TidHost, "h", 0, 1)
	tr.Complete(ProcModeled, TidEngine, "m1", 0, 1)
	tr.Complete(ProcHost, TidHost, "h2", 2, 1)
	tr.Counter(ProcModeled, TidPipe, "m2", 3, 4)
	got := tr.ModeledEvents()
	if len(got) != 2 || got[0].Name != "m1" || got[1].Name != "m2" {
		t.Errorf("ModeledEvents = %+v", got)
	}
}

func TestMetricsRingWraparound(t *testing.T) {
	m := NewMetrics(3)
	for i := 1; i <= 5; i++ {
		m.Append(IterSample{Loop: "l", Iter: int64(i)})
	}
	if m.Len() != 3 {
		t.Errorf("len = %d, want 3", m.Len())
	}
	if m.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", m.Dropped())
	}
	rows := m.Rows()
	if len(rows) != 3 || rows[0].Iter != 3 || rows[1].Iter != 4 || rows[2].Iter != 5 {
		t.Errorf("rows after wraparound: %+v", rows)
	}
}

func TestMetricsAppendDoesNotAllocate(t *testing.T) {
	m := NewMetrics(4)
	per := testing.AllocsPerRun(100, func() {
		m.Append(IterSample{Loop: "l", Iter: 1, Frontier: 10})
	})
	if per != 0 {
		t.Errorf("append allocates %v times per call, want 0", per)
	}
}

func TestMetricsJSONL(t *testing.T) {
	m := NewMetrics(4)
	m.Append(IterSample{Loop: "loop-wl", Iter: 1, Frontier: 17, LaneUtil: 0.5})
	m.Append(IterSample{Loop: "loop-wl", Iter: 2, Frontier: 9})
	var buf bytes.Buffer
	if err := m.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	var row IterSample
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatalf("row 0 not JSON: %v", err)
	}
	if row.Loop != "loop-wl" || row.Iter != 1 || row.Frontier != 17 || row.LaneUtil != 0.5 {
		t.Errorf("row 0 = %+v", row)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Observe("lane_util", 0.75)
	r.Add("pushes", 2)
	r.Add("pushes", 3)
	if v, ok := r.Get("lane_util"); !ok || v != 0.75 {
		t.Errorf("lane_util = %v, %v", v, ok)
	}
	if v, _ := r.Get("pushes"); v != 5 {
		t.Errorf("pushes = %v, want 5", v)
	}
	if r.Len() != 2 {
		t.Errorf("len = %d", r.Len())
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := "{\"name\":\"lane_util\",\"value\":0.75}\n{\"name\":\"pushes\",\"value\":5}\n"
	if buf.String() != want {
		t.Errorf("registry JSONL:\n got %q\nwant %q", buf.String(), want)
	}
}

// TestExportCarriesDropCount checks a truncated trace says so: the export
// gains a top-level traceDropped field (ignored by Perfetto, read by /statz
// consumers) and still passes schema validation.
func TestExportCarriesDropCount(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Complete(ProcModeled, TidEngine, "e", float64(i), 1)
	}
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("export with drops fails validation: %v", err)
	}
	var doc struct {
		TraceDropped int64 `json:"traceDropped"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceDropped != 3 {
		t.Errorf("traceDropped = %d, want 3", doc.TraceDropped)
	}
}

// TestRegistrySnapshotUnderConcurrentAdd hammers the registry from many
// goroutines while snapshots stream out: every WriteJSONL page must stay
// internally consistent — sorted by name, valid JSON per line — and the final
// totals must account for every Add.
func TestRegistrySnapshotUnderConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	names := []string{"serve.requests", "serve.ok", "serve.errors", "serve.rollbacks"}
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Add(names[(g+i)%len(names)], 1)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var buf bytes.Buffer
		if err := r.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		prev := ""
		for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			if line == "" {
				continue
			}
			var row struct {
				Name  string  `json:"name"`
				Value float64 `json:"value"`
			}
			if err := json.Unmarshal([]byte(line), &row); err != nil {
				t.Fatalf("snapshot line not JSON under concurrent Add: %q: %v", line, err)
			}
			if row.Name <= prev {
				t.Fatalf("snapshot not sorted: %q after %q", row.Name, prev)
			}
			prev = row.Name
		}
		select {
		case <-done:
			total := 0.0
			for _, n := range names {
				v, _ := r.Get(n)
				total += v
			}
			if total != 8*perG {
				t.Fatalf("lost adds: total %v, want %d", total, 8*perG)
			}
			return
		default:
		}
	}
}

// TestTraceFileValid validates an on-disk trace named by EGACS_TRACE_FILE:
// the `make trace-smoke` target runs egacs with -trace and then this test
// against the produced file, closing the loop from CLI flag to loadable
// Perfetto JSON.
func TestTraceFileValid(t *testing.T) {
	path := os.Getenv("EGACS_TRACE_FILE")
	if path == "" {
		t.Skip("EGACS_TRACE_FILE not set (run via make trace-smoke)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if !bytes.Contains(data, []byte(`"pipe-loop"`)) {
		t.Errorf("%s: missing pipe-loop track metadata", path)
	}
}
