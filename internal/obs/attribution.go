package obs

import (
	"fmt"
	"io"
	"strconv"
)

// CostClass buckets modeled cycles by what the modeled hardware was doing
// when they were charged. The engine attributes every cycle it adds to the
// modeled clock to exactly one class, so the per-class totals are a lossless
// decomposition of Engine.TimeCycles(): folded in the canonical order (class
// index order, phases in sorted-name order within a class) they reproduce the
// clock bit-for-bit — see Attribution.Total.
type CostClass uint8

const (
	// CostVALU is vector ALU issue: arithmetic, compares, blends,
	// reductions, scans and conversions.
	CostVALU CostClass = iota
	// CostScalar is uniform scalar issue, including scalar load/store issue
	// slots (their exposed stalls go to CostMemLoad).
	CostScalar
	// CostGatherScatter is the irregular indexed-access path: gather and
	// scatter instruction issue plus hardware-gather stalls. This is the
	// CSR-fallback signature — SELL hub rows and CSR row sweeps cost here.
	CostGatherScatter
	// CostDenseStream is the unit-stride path: vector load/store and packed
	// store issue plus stream-continuation stalls. This is the SELL
	// dense-path signature — slice columns cost here, so the
	// CostGatherScatter/CostDenseStream split separates fallback-CSR from
	// dense-SELL execution per phase.
	CostDenseStream
	// CostMemLoad is exposed scalar-load stall: uniform loads, the leading
	// lane of a unit-stride vector load, and per-lane software-gather loads
	// on targets without native gather.
	CostMemLoad
	// CostAtomic is the fixed issue+latency charge of non-push hardware
	// atomics.
	CostAtomic
	// CostWorklist is the atomic charge of worklist pushes (tail
	// reservations and staged-slot commits).
	CostWorklist
	// CostAtomicSerial is segment time set by the contended-atomic
	// serialization floor (the whole segment was bound by serialized
	// atomics, not by any one task's compute or stalls).
	CostAtomicSerial
	// CostBarrier is inter-segment barrier cost.
	CostBarrier
	// CostLaunch is task-launch cost.
	CostLaunch
	// CostHost is modeled sequential host work between launches
	// (Engine.AddCycles).
	CostHost
	// CostRecovery is reserved for checkpoint/rollback work. Rollback
	// restores the modeled clock to the checkpoint, so wasted cycles never
	// remain on the clock and this class stays zero in the summed buckets;
	// discarded-execution cost is reported separately (Attribution.Wasted).
	CostRecovery

	NumCostClasses
)

var costClassNames = [NumCostClasses]string{
	CostVALU:          "valu",
	CostScalar:        "scalar",
	CostGatherScatter: "gather_scatter",
	CostDenseStream:   "dense_stream",
	CostMemLoad:       "mem_load",
	CostAtomic:        "atomic",
	CostWorklist:      "worklist",
	CostAtomicSerial:  "atomic_serial",
	CostBarrier:       "barrier",
	CostLaunch:        "launch",
	CostHost:          "host",
	CostRecovery:      "recovery",
}

func (c CostClass) String() string {
	if c < NumCostClasses {
		return costClassNames[c]
	}
	return fmt.Sprintf("class%d", uint8(c))
}

// ParseCostClass resolves a class name written by String.
func ParseCostClass(s string) (CostClass, bool) {
	for c := CostClass(0); c < NumCostClasses; c++ {
		if costClassNames[c] == s {
			return c, true
		}
	}
	return 0, false
}

// AttrPhase is one pipe-loop phase's share of the modeled clock, broken down
// by cost class.
type AttrPhase struct {
	Phase  string
	Cycles [NumCostClasses]float64
}

// Attribution is a snapshot of an engine's cycle attribution: every cycle on
// the modeled clock assigned to one (phase, class) bucket. Phases are listed
// in sorted-name order — the canonical fold order — so Total reproduces the
// engine clock bit-exactly.
type Attribution struct {
	Phases []AttrPhase
	// Wasted is modeled cycles of discarded (rolled-back) execution. It is
	// NOT part of the clock — rollback rewinds the clock to the checkpoint —
	// and therefore not part of Total; callers fill it from recovery stats.
	Wasted float64
}

// ClassTotals folds each class across phases in listed (sorted-name) order.
// Because the engine recomputes its clock with exactly this fold after every
// charge, each entry is the class's exact share of the clock.
func (a *Attribution) ClassTotals() [NumCostClasses]float64 {
	var t [NumCostClasses]float64
	for c := 0; c < int(NumCostClasses); c++ {
		for i := range a.Phases {
			t[c] += a.Phases[i].Cycles[c]
		}
	}
	return t
}

// Total folds the class totals in class index order. This is the canonical
// fold the engine uses for its clock, so Total == Engine.TimeCycles()
// bit-exactly for a snapshot taken from that engine.
func (a *Attribution) Total() float64 {
	t := a.ClassTotals()
	var sum float64
	for c := 0; c < int(NumCostClasses); c++ {
		sum += t[c]
	}
	return sum
}

// ClassMap returns the non-zero class totals keyed by class name — the
// serialization the bench report carries. SumClassMap refolds it to the exact
// clock.
func (a *Attribution) ClassMap() map[string]float64 {
	t := a.ClassTotals()
	m := make(map[string]float64)
	for c := CostClass(0); c < NumCostClasses; c++ {
		if t[c] != 0 {
			m[c.String()] = t[c]
		}
	}
	return m
}

// SumClassMap folds a ClassMap in class index order — the canonical fold —
// so a JSON round-trip of the map still sums bit-exactly to the clock it was
// snapshotted from (encoding/json preserves float64 exactly; absent classes
// contribute an exact zero).
func SumClassMap(m map[string]float64) float64 {
	var sum float64
	for c := CostClass(0); c < NumCostClasses; c++ {
		sum += m[c.String()]
	}
	return sum
}

// WriteCollapsed renders the attribution in collapsed-stack ("folded")
// format, one "root;phase;class cycles" line per non-zero bucket — the input
// format flamegraph tools consume. Cycles are rounded to integers for
// display; the exact decomposition lives in the struct.
func (a *Attribution) WriteCollapsed(w io.Writer, root string) {
	for i := range a.Phases {
		p := &a.Phases[i]
		for c := CostClass(0); c < NumCostClasses; c++ {
			if v := p.Cycles[c]; v != 0 {
				fmt.Fprintf(w, "%s;%s;%s %s\n", root, p.Phase, c,
					strconv.FormatFloat(v, 'f', 0, 64))
			}
		}
	}
	if a.Wasted != 0 {
		fmt.Fprintf(w, "%s;(rolled-back);recovery %s\n", root,
			strconv.FormatFloat(a.Wasted, 'f', 0, 64))
	}
}

// WriteText renders a per-class summary table with per-phase columns folded
// out, largest class first within the listed phase order preserved.
func (a *Attribution) WriteText(w io.Writer) {
	totals := a.ClassTotals()
	total := a.Total()
	fmt.Fprintf(w, "%-14s %16s %7s\n", "class", "cycles", "%")
	for c := CostClass(0); c < NumCostClasses; c++ {
		if totals[c] == 0 {
			continue
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * totals[c] / total
		}
		fmt.Fprintf(w, "%-14s %16.0f %6.2f%%\n", c, totals[c], pct)
	}
	fmt.Fprintf(w, "%-14s %16.0f %7s\n", "total", total, "")
	if a.Wasted != 0 {
		fmt.Fprintf(w, "%-14s %16.0f %7s\n", "rolled-back", a.Wasted, "")
	}
}
