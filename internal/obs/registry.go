package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Registry is a concurrency-safe store of named scalar observations. The
// bench harness threads one through its experiments so headline numbers
// (lane utilization, atomic-push reductions, geomean speedups) land in the
// BENCH_*.json reports next to the wall-clock rows instead of only in tables
// printed to stdout.
type Registry struct {
	mu   sync.Mutex
	vals map[string]float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{vals: map[string]float64{}}
}

// Observe sets name to v, replacing any previous observation.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	r.vals[name] = v
	r.mu.Unlock()
}

// Add increments name by v (starting from zero).
func (r *Registry) Add(name string, v float64) {
	r.mu.Lock()
	r.vals[name] += v
	r.mu.Unlock()
}

// Get returns the observation for name, and whether one exists.
func (r *Registry) Get(name string) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vals[name]
	return v, ok
}

// Len returns the number of distinct names observed.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.vals)
}

// Snapshot returns a copy of all observations.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.vals))
	for k, v := range r.vals {
		out[k] = v
	}
	return out
}

// WriteJSONL emits one {"name": ..., "value": ...} object per line, sorted by
// name for deterministic output.
func (r *Registry) WriteJSONL(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	type row struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	}
	for _, k := range names {
		b, err := json.Marshal(row{Name: k, Value: snap[k]})
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}
