// Package obs is the observability layer: a zero-overhead-when-disabled span
// tracer, a per-iteration metrics ring, and a named-value registry.
//
// The tracer records execution spans on two clocks at once. The *modeled*
// clock is the engine's simulated time (cycles converted to microseconds by
// the caller): every event on it derives exclusively from modeled quantities,
// so the modeled timeline of a run is bit-identical across repeated runs and
// across all host-execution modes. The *host* clock is real wall time and
// documents what the host scheduler actually did; it differs run to run.
// Events export as Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing: one process per clock, one track per modeled task plus
// engine, pipe-loop and host-scheduler tracks.
//
// All buffers are pre-sized at construction. Recording an event into a full
// tracer drops it (counted) instead of allocating; the steady-state record
// path performs zero heap allocations.
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"
)

// Process ids: one trace-event "process" per clock.
const (
	// ProcModeled carries events timestamped in modeled (simulated) time.
	ProcModeled = 1
	// ProcHost carries events timestamped in host wall time.
	ProcHost = 2
)

// Track (thread) ids within a process.
const (
	// TidEngine is the modeled engine/scheduler track: kernel launches and
	// barrier costs.
	TidEngine = 0
	// TidPipe is the modeled pipe-loop track: per-iteration spans, frontier
	// counters and worklist swaps.
	TidPipe = 1
	// TidTask0 is the track of modeled task 0; task i maps to TidTask0 + i.
	TidTask0 = 2
	// TidHost is the host-scheduler track on ProcHost.
	TidHost = 0
)

// DefaultTraceCapacity is the event-buffer size NewTracer uses for
// capacity <= 0: roomy enough for full runs on the evaluation inputs while
// bounding memory to a few megabytes.
const DefaultTraceCapacity = 1 << 18

// Event is one recorded trace event. Timestamps and durations are in
// microseconds on the owning process's clock. At most one numeric argument is
// attached (ArgKey == "" means none); names and keys are expected to be
// static or interned strings so recording never allocates.
type Event struct {
	Name   string
	Ph     byte // 'X' complete, 'i' instant, 'C' counter
	Pid    int32
	Tid    int32
	Ts     float64
	Dur    float64 // 'X' only
	ArgKey string
	ArgVal int64
}

// Tracer accumulates events into a fixed-capacity buffer. It is not
// internally synchronized: the engine guarantees single-threaded access by
// recording only at points where exactly one goroutine owns the engine
// (launch boundaries, segment merges, host/task-0 loop control).
type Tracer struct {
	events  []Event
	dropped int64
	epoch   time.Time
}

// NewTracer creates a tracer whose event buffer holds capacity events
// (DefaultTraceCapacity when <= 0). The host clock starts at construction.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{events: make([]Event, 0, capacity), epoch: time.Now()}
}

// HostNow returns the current host-clock timestamp in microseconds since the
// tracer was created.
func (t *Tracer) HostNow() float64 {
	return float64(time.Since(t.epoch)) / 1e3
}

func (t *Tracer) emit(ev Event) {
	if len(t.events) == cap(t.events) {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Complete records a complete ('X') span.
func (t *Tracer) Complete(pid, tid int, name string, tsUS, durUS float64) {
	t.emit(Event{Name: name, Ph: 'X', Pid: int32(pid), Tid: int32(tid), Ts: tsUS, Dur: durUS})
}

// CompleteArg records a complete span with one numeric argument.
func (t *Tracer) CompleteArg(pid, tid int, name string, tsUS, durUS float64, key string, val int64) {
	t.emit(Event{Name: name, Ph: 'X', Pid: int32(pid), Tid: int32(tid), Ts: tsUS, Dur: durUS, ArgKey: key, ArgVal: val})
}

// Instant records an instant ('i') event with one numeric argument.
func (t *Tracer) Instant(pid, tid int, name string, tsUS float64, key string, val int64) {
	t.emit(Event{Name: name, Ph: 'i', Pid: int32(pid), Tid: int32(tid), Ts: tsUS, ArgKey: key, ArgVal: val})
}

// Counter records a counter ('C') sample, rendered by Perfetto as a stepped
// time series.
func (t *Tracer) Counter(pid, tid int, name string, tsUS float64, val int64) {
	t.emit(Event{Name: name, Ph: 'C', Pid: int32(pid), Tid: int32(tid), Ts: tsUS, ArgKey: name, ArgVal: val})
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int { return len(t.events) }

// Dropped returns how many events were discarded because the buffer was full.
func (t *Tracer) Dropped() int64 { return t.dropped }

// Events returns the recorded events in record order (aliasing storage).
func (t *Tracer) Events() []Event { return t.events }

// ModeledEvents returns only the events on the modeled clock, in record
// order. This is the determinism surface: for a given program and input it is
// bit-identical across repeated runs and across host-execution modes.
func (t *Tracer) ModeledEvents() []Event {
	out := make([]Event, 0, len(t.events))
	for _, ev := range t.events {
		if ev.Pid == ProcModeled {
			out = append(out, ev)
		}
	}
	return out
}

// trackName labels known (pid, tid) pairs for the exported metadata.
func trackName(pid, tid int32) string {
	if pid == ProcHost {
		return "host-scheduler"
	}
	switch tid {
	case TidEngine:
		return "engine"
	case TidPipe:
		return "pipe-loop"
	default:
		return fmt.Sprintf("task %d", tid-TidTask0)
	}
}

func procName(pid int32) string {
	if pid == ProcHost {
		return "host (wall time)"
	}
	return "modeled (simulated time)"
}

// Export writes the trace as Chrome trace-event JSON ("JSON Object Format"):
// a traceEvents array preceded by process/thread name metadata, plus a
// top-level traceDropped count so a truncated trace is distinguishable from a
// complete one after the fact. The output loads directly in Perfetto
// (ui.perfetto.dev) and chrome://tracing, which ignore unknown top-level keys.
func (t *Tracer) Export(w io.Writer) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "{\"displayTimeUnit\":\"ms\",\"traceDropped\":%d,\"traceEvents\":[", t.dropped)

	// Metadata: name every (pid, tid) pair present, in sorted order so the
	// header is deterministic regardless of event interleaving.
	type track struct{ pid, tid int32 }
	seen := map[track]bool{}
	for _, ev := range t.events {
		seen[track{ev.Pid, ev.Tid}] = true
	}
	tracks := make([]track, 0, len(seen))
	for tr := range seen {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	first := true
	meta := func(pid, tid int32, kind, name string) {
		if !first {
			buf.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&buf, "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":%q,\"args\":{\"name\":%q}}",
			pid, tid, kind, name)
	}
	prevPid := int32(-1)
	for _, tr := range tracks {
		if tr.pid != prevPid {
			meta(tr.pid, 0, "process_name", procName(tr.pid))
			prevPid = tr.pid
		}
		meta(tr.pid, tr.tid, "thread_name", trackName(tr.pid, tr.tid))
	}

	for i := range t.events {
		ev := &t.events[i]
		if !first {
			buf.WriteByte(',')
		}
		first = false
		buf.WriteString("{\"name\":")
		buf.WriteString(strconv.Quote(ev.Name))
		buf.WriteString(",\"ph\":\"")
		buf.WriteByte(ev.Ph)
		buf.WriteString("\",\"pid\":")
		buf.WriteString(strconv.FormatInt(int64(ev.Pid), 10))
		buf.WriteString(",\"tid\":")
		buf.WriteString(strconv.FormatInt(int64(ev.Tid), 10))
		buf.WriteString(",\"ts\":")
		buf.WriteString(strconv.FormatFloat(ev.Ts, 'f', 3, 64))
		if ev.Ph == 'X' {
			buf.WriteString(",\"dur\":")
			buf.WriteString(strconv.FormatFloat(ev.Dur, 'f', 3, 64))
		}
		if ev.Ph == 'i' {
			buf.WriteString(",\"s\":\"t\"")
		}
		if ev.ArgKey != "" {
			buf.WriteString(",\"args\":{")
			buf.WriteString(strconv.Quote(ev.ArgKey))
			buf.WriteByte(':')
			buf.WriteString(strconv.FormatInt(ev.ArgVal, 10))
			buf.WriteByte('}')
		}
		buf.WriteByte('}')
	}
	buf.WriteString("]}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// WriteFile exports the trace to path, warning on stderr when the ring
// overflowed: a silently truncated trace reads as "the run did less than it
// did", which is worse than no trace at all.
func (t *Tracer) WriteFile(path string) error {
	if t.dropped > 0 {
		fmt.Fprintf(os.Stderr, "obs: trace ring overflowed: %d events dropped from %s (raise the tracer capacity)\n",
			t.dropped, path)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Validate checks data against the trace-event schema this package emits: a
// JSON object with a traceEvents array whose members carry a name, a known
// phase, numeric pid/tid, a numeric ts (metadata excepted) and, for complete
// events, a non-negative dur. Used by the trace-smoke CI step.
func Validate(data []byte) error {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	num := func(ev map[string]json.RawMessage, key string) (float64, error) {
		raw, ok := ev[key]
		if !ok {
			return 0, fmt.Errorf("missing %q", key)
		}
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil {
			return 0, fmt.Errorf("non-numeric %q", key)
		}
		return v, nil
	}
	for i, ev := range doc.TraceEvents {
		var ph, name string
		if raw, ok := ev["ph"]; !ok || json.Unmarshal(raw, &ph) != nil {
			return fmt.Errorf("obs: event %d: missing or invalid ph", i)
		}
		if raw, ok := ev["name"]; !ok || json.Unmarshal(raw, &name) != nil || name == "" {
			return fmt.Errorf("obs: event %d: missing or empty name", i)
		}
		if _, err := num(ev, "pid"); err != nil {
			return fmt.Errorf("obs: event %d (%s): %v", i, name, err)
		}
		if _, err := num(ev, "tid"); err != nil {
			return fmt.Errorf("obs: event %d (%s): %v", i, name, err)
		}
		switch ph {
		case "M":
			// Metadata events carry no timestamp.
		case "X":
			if ts, err := num(ev, "ts"); err != nil || ts < 0 {
				return fmt.Errorf("obs: event %d (%s): bad ts", i, name)
			}
			if dur, err := num(ev, "dur"); err != nil || dur < 0 {
				return fmt.Errorf("obs: event %d (%s): bad dur", i, name)
			}
		case "i", "C":
			if ts, err := num(ev, "ts"); err != nil || ts < 0 {
				return fmt.Errorf("obs: event %d (%s): bad ts", i, name)
			}
		default:
			return fmt.Errorf("obs: event %d (%s): unknown phase %q", i, name, ph)
		}
	}
	return nil
}
