package obs

import (
	"encoding/json"
	"fmt"
)

// BenchSchemaVersion is the current BENCH_*.json schema version. Version 2
// added the per-row cycle_attribution map (per-cost-class modeled-cycle
// totals that must re-fold to modeled_cycles bit-exactly). Version 3 added
// the optional top-level mutation section (streaming-mutation serving
// latency and update throughput). Reports written before versioning carry no
// schema_version field and validate as legacy.
const BenchSchemaVersion = 3

// ValidateBenchReport structurally validates a BENCH_*.json host-execution
// report (the schema written by the repo's `make bench` harness; see
// hostexec_bench_test.go). It works on raw JSON so report writers and CI
// checks share one gate without importing the test package: required
// top-level fields, at least one kernel row, per-row required fields, and
// range checks on the per-layout columns added by the SELL-C-σ experiment
// (layout tag, lane utilizations in [0,1], padding overhead ≥ 1x). Rows are
// keyed by kernel+layout and must be unique.
//
// The report is versioned: schema_version absent or ≤ 1 validates as legacy
// (pre-attribution) — a version from the future is rejected rather than
// silently accepted with its new fields ignored. Version 2 reports must
// carry a cycle_attribution map on every row whose keys parse as cost
// classes and whose canonical class-order re-fold reproduces modeled_cycles
// bit-exactly (no epsilon: both sides are folds of the same buckets and
// encoding/json round-trips float64 exactly). Version 3 reports may carry a
// top-level mutation section (the streaming-mutation serving experiment);
// when present it must be internally consistent — positive latencies, p99 at
// or above p50 on both arms, a p99 ratio that matches the two arms' tails,
// and positive throughput — and a report older than version 3 must not carry
// one at all.
func ValidateBenchReport(raw []byte) error {
	var rep struct {
		SchemaVersion  int     `json:"schema_version"`
		Generated      string  `json:"generated"`
		GoVersion      string  `json:"go_version"`
		BackendGeomean float64 `json:"backend_wall_geomean"`
		Kernels        []struct {
			Kernel        string   `json:"kernel"`
			Graph         string   `json:"graph"`
			Layout        string   `json:"layout"`
			ModeledCycles float64  `json:"modeled_cycles"`
			CoopWallNsOp  float64  `json:"cooperative_wall_ns_per_op"`
			ParWallNsOp   float64  `json:"parallel_wall_ns_per_op"`
			Speedup       float64  `json:"wall_speedup"`
			InterpNsOp    float64  `json:"interp_wall_ns_per_op"`
			CompiledNsOp  float64  `json:"compiled_wall_ns_per_op"`
			BackendSpeed  float64  `json:"backend_wall_speedup"`
			LaneUtil      float64  `json:"lane_utilization"`
			L1HitRate     float64  `json:"l1_hit_rate"`
			SellLaneUtil  *float64 `json:"sell_lane_utilization"`
			SellPadding   *float64 `json:"sell_padding_overhead"`
			SellFallback  *float64 `json:"sell_fallback_ratio"`
			SellColumns   *int64   `json:"sell_columns"`

			CycleAttribution map[string]float64 `json:"cycle_attribution"`
		} `json:"kernels"`
		Mutation *struct {
			Graph           string  `json:"graph"`
			StaticP50MS     float64 `json:"static_p50_ms"`
			StaticP99MS     float64 `json:"static_p99_ms"`
			MutatingP50MS   float64 `json:"mutating_p50_ms"`
			MutatingP99MS   float64 `json:"mutating_p99_ms"`
			QueryP99Ratio   float64 `json:"query_p99_ratio"`
			UpdateOpsPerSec float64 `json:"update_ops_per_sec"`
			QueriesPerArm   int64   `json:"queries_per_arm"`
			FinalEpoch      int64   `json:"final_epoch"`
		} `json:"mutation"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("bench report: %w", err)
	}
	if rep.SchemaVersion < 0 || rep.SchemaVersion > BenchSchemaVersion {
		return fmt.Errorf("bench report: unknown schema_version %d (this build understands <= %d)",
			rep.SchemaVersion, BenchSchemaVersion)
	}
	if rep.Generated == "" {
		return fmt.Errorf("bench report: missing generated timestamp")
	}
	if rep.GoVersion == "" {
		return fmt.Errorf("bench report: missing go_version")
	}
	if len(rep.Kernels) == 0 {
		return fmt.Errorf("bench report: no kernel rows")
	}
	seen := make(map[string]bool, len(rep.Kernels))
	rowsWithBackend := 0
	for i, k := range rep.Kernels {
		row := fmt.Sprintf("row %d (%s/%s)", i, k.Kernel, k.Layout)
		if k.Kernel == "" {
			return fmt.Errorf("bench report: row %d: missing kernel name", i)
		}
		if k.Graph == "" {
			return fmt.Errorf("bench report: %s: missing graph name", row)
		}
		switch k.Layout {
		case "", "csr", "sell":
		default:
			return fmt.Errorf("bench report: %s: unknown layout %q", row, k.Layout)
		}
		key := k.Kernel + "/" + k.Layout
		if seen[key] {
			return fmt.Errorf("bench report: duplicate row for %s", key)
		}
		seen[key] = true
		if k.ModeledCycles <= 0 {
			return fmt.Errorf("bench report: %s: modeled_cycles = %v, want > 0", row, k.ModeledCycles)
		}
		if k.CoopWallNsOp < 0 || k.ParWallNsOp < 0 || k.Speedup < 0 {
			return fmt.Errorf("bench report: %s: negative wall-clock fields", row)
		}
		if k.InterpNsOp < 0 || k.CompiledNsOp < 0 || k.BackendSpeed < 0 {
			return fmt.Errorf("bench report: %s: negative backend wall-clock fields", row)
		}
		if (k.InterpNsOp > 0) != (k.CompiledNsOp > 0) {
			return fmt.Errorf("bench report: %s: backend columns must come in interp+compiled pairs", row)
		}
		if k.InterpNsOp > 0 {
			if k.BackendSpeed <= 0 {
				return fmt.Errorf("bench report: %s: backend row missing backend_wall_speedup", row)
			}
			want := k.InterpNsOp / k.CompiledNsOp
			if r := k.BackendSpeed / want; r < 0.999 || r > 1.001 {
				return fmt.Errorf("bench report: %s: backend_wall_speedup = %v, want interp/compiled = %v",
					row, k.BackendSpeed, want)
			}
			rowsWithBackend++
		}
		if k.LaneUtil < 0 || k.LaneUtil > 1 {
			return fmt.Errorf("bench report: %s: lane_utilization = %v, want [0,1]", row, k.LaneUtil)
		}
		if k.L1HitRate < 0 || k.L1HitRate > 1 {
			return fmt.Errorf("bench report: %s: l1_hit_rate = %v, want [0,1]", row, k.L1HitRate)
		}
		if k.Layout == "sell" {
			if k.SellLaneUtil == nil || k.SellColumns == nil {
				return fmt.Errorf("bench report: %s: sell row missing sell_lane_utilization/sell_columns", row)
			}
		}
		if k.SellLaneUtil != nil && (*k.SellLaneUtil < 0 || *k.SellLaneUtil > 1) {
			return fmt.Errorf("bench report: %s: sell_lane_utilization = %v, want [0,1]", row, *k.SellLaneUtil)
		}
		if k.SellPadding != nil && *k.SellPadding < 1 {
			return fmt.Errorf("bench report: %s: sell_padding_overhead = %v, want >= 1", row, *k.SellPadding)
		}
		if k.SellFallback != nil && (*k.SellFallback < 0 || *k.SellFallback > 1) {
			return fmt.Errorf("bench report: %s: sell_fallback_ratio = %v, want [0,1]", row, *k.SellFallback)
		}
		if k.SellColumns != nil && *k.SellColumns < 0 {
			return fmt.Errorf("bench report: %s: sell_columns = %d, want >= 0", row, *k.SellColumns)
		}
		if rep.SchemaVersion >= 2 {
			if len(k.CycleAttribution) == 0 {
				return fmt.Errorf("bench report: %s: schema_version %d row missing cycle_attribution",
					row, rep.SchemaVersion)
			}
			for name, v := range k.CycleAttribution {
				if _, ok := ParseCostClass(name); !ok {
					return fmt.Errorf("bench report: %s: unknown cost class %q in cycle_attribution", row, name)
				}
				if v < 0 {
					return fmt.Errorf("bench report: %s: cycle_attribution[%q] = %v, want >= 0", row, name, v)
				}
			}
			if got := SumClassMap(k.CycleAttribution); got != k.ModeledCycles {
				return fmt.Errorf("bench report: %s: cycle_attribution sums to %v, modeled_cycles = %v (must match bit-exactly)",
					row, got, k.ModeledCycles)
			}
		} else if len(k.CycleAttribution) != 0 {
			return fmt.Errorf("bench report: %s: cycle_attribution present but schema_version %d predates it",
				row, rep.SchemaVersion)
		}
	}
	if rep.BackendGeomean < 0 {
		return fmt.Errorf("bench report: backend_wall_geomean = %v, want >= 0", rep.BackendGeomean)
	}
	if rep.BackendGeomean > 0 && rowsWithBackend == 0 {
		return fmt.Errorf("bench report: backend_wall_geomean set but no row carries backend columns")
	}
	if rep.BackendGeomean == 0 && rowsWithBackend > 0 {
		return fmt.Errorf("bench report: %d backend rows but no backend_wall_geomean summary", rowsWithBackend)
	}
	if m := rep.Mutation; m != nil {
		if rep.SchemaVersion < 3 {
			return fmt.Errorf("bench report: mutation section present but schema_version %d predates it",
				rep.SchemaVersion)
		}
		if m.Graph == "" {
			return fmt.Errorf("bench report: mutation: missing graph name")
		}
		if m.StaticP50MS <= 0 || m.StaticP99MS <= 0 || m.MutatingP50MS <= 0 || m.MutatingP99MS <= 0 {
			return fmt.Errorf("bench report: mutation: latency percentiles must all be > 0 (static %v/%v, mutating %v/%v)",
				m.StaticP50MS, m.StaticP99MS, m.MutatingP50MS, m.MutatingP99MS)
		}
		if m.StaticP99MS < m.StaticP50MS {
			return fmt.Errorf("bench report: mutation: static p99 %v below p50 %v", m.StaticP99MS, m.StaticP50MS)
		}
		if m.MutatingP99MS < m.MutatingP50MS {
			return fmt.Errorf("bench report: mutation: mutating p99 %v below p50 %v", m.MutatingP99MS, m.MutatingP50MS)
		}
		want := m.MutatingP99MS / m.StaticP99MS
		if r := m.QueryP99Ratio / want; m.QueryP99Ratio <= 0 || r < 0.999 || r > 1.001 {
			return fmt.Errorf("bench report: mutation: query_p99_ratio = %v, want mutating/static p99 = %v",
				m.QueryP99Ratio, want)
		}
		if m.UpdateOpsPerSec <= 0 {
			return fmt.Errorf("bench report: mutation: update_ops_per_sec = %v, want > 0", m.UpdateOpsPerSec)
		}
		if m.QueriesPerArm <= 0 {
			return fmt.Errorf("bench report: mutation: queries_per_arm = %d, want > 0", m.QueriesPerArm)
		}
		if m.FinalEpoch < 1 {
			return fmt.Errorf("bench report: mutation: final_epoch = %d, want >= 1 (at least one compaction)", m.FinalEpoch)
		}
	}
	return nil
}
