package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 1.5, 7, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	// le semantics: 0.5 and 1 land in the first bucket, 1.5 in the second,
	// 7 in the third, 100 overflows.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Sum != 0.5+1+1.5+7+100 {
		t.Errorf("sum = %v", s.Sum)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {5, 1},
		"duplicate":  {1, 1},
		"inf":        {1, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds accepted", name)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"serve.requests":       "serve_requests",
		"serve.err.bad-request": "serve_err_bad_request",
		"9lives":               "_9lives",
		"ok_already":           "ok_already",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromWriterRoundTrip feeds a representative page — counters, gauges, a
// labeled histogram with escaping-hostile label values — through the writer
// and requires the independent validator to accept it.
func TestPromWriterRoundTrip(t *testing.T) {
	p := NewPromWriter()
	p.Family("egacs_serve_requests_total", "total requests", "counter")
	p.Sample("egacs_serve_requests_total", nil, 42)
	p.Family("egacs_serve_load", "admission occupancy", "gauge")
	p.Sample("egacs_serve_load", nil, 0.75)
	p.Family("egacs_errors_total", "errors by class", "counter")
	p.Sample("egacs_errors_total", []Label{{"class", `weird"va\lue` + "\nnewline"}}, 3)

	h := NewHistogram([]float64{0.5, 1, 5})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(99)
	p.Family("egacs_latency_ms", "request latency", "histogram")
	p.WriteHistogram("egacs_latency_ms", []Label{{"tenant", "a"}, {"kernel", "bfs-wl"}}, h.Snapshot())

	page := p.Bytes()
	if err := ValidatePrometheus(page); err != nil {
		t.Fatalf("writer output rejected by validator: %v\n%s", err, page)
	}
	out := string(page)
	for _, want := range []string{
		"# TYPE egacs_latency_ms histogram",
		`egacs_latency_ms_bucket{tenant="a",kernel="bfs-wl",le="+Inf"} 3`,
		`egacs_latency_ms_count{tenant="a",kernel="bfs-wl"} 3`,
		"egacs_serve_requests_total 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("page missing %q:\n%s", want, out)
		}
	}
}

// TestValidatePrometheusMutations checks the validator catches each format
// violation class it claims to.
func TestValidatePrometheusMutations(t *testing.T) {
	valid := `# HELP egacs_x_total a counter
# TYPE egacs_x_total counter
egacs_x_total{tenant="t"} 5
# TYPE egacs_lat histogram
egacs_lat_bucket{le="1"} 2
egacs_lat_bucket{le="5"} 3
egacs_lat_bucket{le="+Inf"} 4
egacs_lat_sum 7.5
egacs_lat_count 4
`
	if err := ValidatePrometheus([]byte(valid)); err != nil {
		t.Fatalf("valid page rejected: %v", err)
	}

	cases := map[string]struct{ page, want string }{
		"bad metric name": {
			"9bad_name 1\n", "invalid metric name",
		},
		"bad label name": {
			"egacs_x{__reserved=\"v\"} 1\n", "invalid label name",
		},
		"unquoted label value": {
			"egacs_x{tenant=t} 1\n", "not quoted",
		},
		"unterminated label value": {
			"egacs_x{tenant=\"t} 1\n", "unterminated",
		},
		"non-numeric value": {
			"egacs_x nope\n", "non-numeric value",
		},
		"duplicate TYPE": {
			"# TYPE egacs_x counter\n# TYPE egacs_x counter\negacs_x 1\n", "duplicate # TYPE",
		},
		"TYPE after samples": {
			"egacs_x 1\n# TYPE egacs_x counter\n", "after its samples",
		},
		"unknown type": {
			"# TYPE egacs_x frobnicator\n", "unknown metric type",
		},
		"histogram missing +Inf": {
			"# TYPE egacs_h histogram\negacs_h_bucket{le=\"1\"} 2\negacs_h_count 2\n", "no +Inf bucket",
		},
		"histogram non-cumulative": {
			"# TYPE egacs_h histogram\negacs_h_bucket{le=\"1\"} 5\negacs_h_bucket{le=\"2\"} 3\negacs_h_bucket{le=\"+Inf\"} 5\n",
			"not cumulative",
		},
		"histogram count mismatch": {
			"# TYPE egacs_h histogram\negacs_h_bucket{le=\"1\"} 2\negacs_h_bucket{le=\"+Inf\"} 4\negacs_h_count 9\n",
			"_count",
		},
	}
	for name, c := range cases {
		err := ValidatePrometheus([]byte(c.page))
		if err == nil {
			t.Errorf("%s: accepted:\n%s", name, c.page)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, c.want)
		}
	}
}
