// Prometheus-style instrumentation: a fixed-bucket histogram, a text
// exposition writer and a strict validator for the format it emits.
//
// The repo deliberately carries no metrics dependency — the exposition format
// (version 0.0.4 text) is a handful of line shapes, and writing both sides by
// hand means the serving daemon's /metrics endpoint can be validated in tests
// by an independent parser instead of trusting the writer about itself.
package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Histogram is a concurrency-safe fixed-bucket histogram. Bucket upper
// bounds are set at construction; observations land in the first bucket whose
// bound is >= the value, or in the implicit +Inf overflow bucket. Observe
// performs no allocation, so the serving hot path can record per-request
// latencies without GC pressure.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing, finite
	counts []uint64  // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram with the given upper bounds, which must be
// finite and strictly increasing. The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	b := append([]float64(nil), bounds...)
	for i, v := range b {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			panic("obs: histogram bounds must be finite (+Inf is implicit)")
		}
		if i > 0 && v <= b[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent copy of a histogram's state. Counts are
// per-bucket (not cumulative); Counts[len(Bounds)] is the +Inf overflow.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram state under its lock.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// PromName maps an internal dotted metric name to a legal Prometheus metric
// name: every character outside [a-zA-Z0-9_:] becomes '_', and a leading
// digit gets a '_' prefix.
func PromName(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i, r := range s {
		legal := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !legal {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// PromWriter accumulates one text-exposition page. Call Family once per
// metric family (it emits the # HELP / # TYPE header), then Sample or
// WriteHistogram for its series; Bytes returns the page.
type PromWriter struct {
	buf   bytes.Buffer
	typed map[string]string
}

// NewPromWriter creates an empty exposition page.
func NewPromWriter() *PromWriter {
	return &PromWriter{typed: map[string]string{}}
}

// Family announces a metric family. typ is counter, gauge or histogram; a
// family may be announced only once and samples may only follow their
// family's announcement — the writer enforces what the validator checks.
func (p *PromWriter) Family(name, help, typ string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	switch typ {
	case "counter", "gauge", "histogram":
	default:
		panic(fmt.Sprintf("obs: invalid metric type %q", typ))
	}
	if _, dup := p.typed[name]; dup {
		panic(fmt.Sprintf("obs: family %q announced twice", name))
	}
	p.typed[name] = typ
	fmt.Fprintf(&p.buf, "# HELP %s %s\n", name, strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(help))
	fmt.Fprintf(&p.buf, "# TYPE %s %s\n", name, typ)
}

// Sample emits one sample line for an announced counter or gauge family.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	if _, ok := p.typed[name]; !ok {
		panic(fmt.Sprintf("obs: sample for unannounced family %q", name))
	}
	p.sampleLine(name, labels, v)
}

func (p *PromWriter) sampleLine(name string, labels []Label, v float64) {
	p.buf.WriteString(name)
	if len(labels) > 0 {
		p.buf.WriteByte('{')
		for i, l := range labels {
			if !validLabelName(l.Name) {
				panic(fmt.Sprintf("obs: invalid label name %q", l.Name))
			}
			if i > 0 {
				p.buf.WriteByte(',')
			}
			p.buf.WriteString(l.Name)
			p.buf.WriteString(`="`)
			p.buf.WriteString(escapeLabelValue(l.Value))
			p.buf.WriteByte('"')
		}
		p.buf.WriteByte('}')
	}
	p.buf.WriteByte(' ')
	p.buf.WriteString(formatPromValue(v))
	p.buf.WriteByte('\n')
}

// WriteHistogram emits the _bucket/_sum/_count series of one histogram
// snapshot under an announced histogram family. Buckets are written
// cumulatively with an explicit +Inf bucket equal to _count, as the format
// requires.
func (p *PromWriter) WriteHistogram(name string, labels []Label, s HistogramSnapshot) {
	if typ := p.typed[name]; typ != "histogram" {
		panic(fmt.Sprintf("obs: family %q is %q, not histogram", name, typ))
	}
	cum := uint64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		p.sampleLine(name+"_bucket", append(labels, Label{"le", formatPromValue(bound)}), float64(cum))
	}
	p.sampleLine(name+"_bucket", append(labels, Label{"le", "+Inf"}), float64(s.Count))
	p.sampleLine(name+"_sum", labels, s.Sum)
	p.sampleLine(name+"_count", labels, float64(s.Count))
}

// Bytes returns the exposition page accumulated so far.
func (p *PromWriter) Bytes() []byte { return p.buf.Bytes() }

// WriteTo writes the page to w.
func (p *PromWriter) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(p.buf.Bytes())
	return int64(n), err
}

func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabelValue(s string) string {
	return strings.NewReplacer("\\", `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// ValidatePrometheus parses data as Prometheus text exposition (version
// 0.0.4) and reports the first violation: malformed metric or label names,
// broken label quoting, non-numeric values, samples preceding their # TYPE,
// duplicate # TYPE lines, and — for histogram families — missing +Inf
// buckets, cumulative bucket counts that decrease as le grows, or a +Inf
// bucket disagreeing with the series' _count. The serve chaos test runs the
// live /metrics page through this, so a writer regression fails CI rather
// than silently feeding scrapers garbage.
func ValidatePrometheus(data []byte) error {
	types := map[string]string{}
	var samples []promSample
	for ln, line := range strings.Split(string(data), "\n") {
		ln++ // 1-based for messages
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue // bare comment
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) < 4 {
					return fmt.Errorf("obs: line %d: malformed # TYPE", ln)
				}
				name, typ := fields[2], strings.TrimSpace(fields[3])
				if !validMetricName(name) {
					return fmt.Errorf("obs: line %d: invalid metric name %q in # TYPE", ln, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("obs: line %d: unknown metric type %q", ln, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("obs: line %d: duplicate # TYPE for %q", ln, name)
				}
				for _, s := range samples {
					if familyOf(s.name, typ) == name {
						return fmt.Errorf("obs: line %d: # TYPE for %q after its samples (line %d)", ln, name, s.line)
					}
				}
				types[name] = typ
			case "HELP":
				if len(fields) < 3 || !validMetricName(fields[2]) {
					return fmt.Errorf("obs: line %d: malformed # HELP", ln)
				}
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("obs: line %d: %w", ln, err)
		}
		s.line = ln
		samples = append(samples, s)
	}
	return checkPromHistograms(types, samples)
}

// familyOf maps a sample name to its family under the given declared type:
// histogram samples drop the _bucket/_sum/_count suffix.
func familyOf(sample, typ string) string {
	if typ != "histogram" && typ != "summary" {
		return sample
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(sample, suf) {
			return strings.TrimSuffix(sample, suf)
		}
	}
	return sample
}

// parsePromSample parses `name{l="v",...} value [timestamp]`.
func parsePromSample(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameByte(line[i], i == 0) {
		i++
	}
	s.name = line[:i]
	if !validMetricName(s.name) {
		return s, fmt.Errorf("invalid metric name at %q", line)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			for i < len(line) && line[i] == ' ' {
				i++
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) {
				return s, fmt.Errorf("unterminated label in %q", line)
			}
			lname := strings.TrimSpace(line[i:j])
			if !validLabelName(lname) {
				return s, fmt.Errorf("invalid label name %q", lname)
			}
			i = j + 1
			if i >= len(line) || line[i] != '"' {
				return s, fmt.Errorf("label %s: value not quoted", lname)
			}
			i++
			var val strings.Builder
			closed := false
			for i < len(line) {
				c := line[i]
				if c == '\\' {
					if i+1 >= len(line) {
						return s, fmt.Errorf("label %s: dangling escape", lname)
					}
					switch line[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("label %s: bad escape \\%c", lname, line[i+1])
					}
					i += 2
					continue
				}
				if c == '"' {
					closed = true
					i++
					break
				}
				val.WriteByte(c)
				i++
			}
			if !closed {
				return s, fmt.Errorf("label %s: unterminated value", lname)
			}
			if _, dup := s.labels[lname]; dup {
				return s, fmt.Errorf("duplicate label %q", lname)
			}
			s.labels[lname] = val.String()
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
	}
	rest := strings.Fields(line[i:])
	if len(rest) < 1 || len(rest) > 2 {
		return s, fmt.Errorf("want `value [timestamp]` after name, got %q", strings.TrimSpace(line[i:]))
	}
	v, err := strconv.ParseFloat(rest[0], 64)
	if err != nil {
		return s, fmt.Errorf("non-numeric value %q", rest[0])
	}
	s.value = v
	if len(rest) == 2 {
		if _, err := strconv.ParseInt(rest[1], 10, 64); err != nil {
			return s, fmt.Errorf("non-integer timestamp %q", rest[1])
		}
	}
	return s, nil
}

func isNameByte(c byte, first bool) bool {
	switch {
	case c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// checkPromHistograms verifies every declared histogram family: per series
// (identified by its non-le labels), cumulative bucket counts must be
// non-decreasing in le, a +Inf bucket must exist, and it must equal _count.
func checkPromHistograms(types map[string]string, samples []promSample) error {
	type series struct {
		buckets map[float64]float64 // le -> cumulative count
		inf     *float64
		count   *float64
	}
	hists := map[string]map[string]*series{} // family -> series key -> data
	for name, typ := range types {
		if typ == "histogram" {
			hists[name] = map[string]*series{}
		}
	}
	get := func(fam, key string) *series {
		sr := hists[fam][key]
		if sr == nil {
			sr = &series{buckets: map[float64]float64{}}
			hists[fam][key] = sr
		}
		return sr
	}
	for _, s := range samples {
		for fam := range hists {
			switch s.name {
			case fam + "_bucket":
				le, ok := s.labels["le"]
				if !ok {
					return fmt.Errorf("obs: line %d: %s without le label", s.line, s.name)
				}
				sr := get(fam, seriesKey(s.labels, "le"))
				if le == "+Inf" || le == "Inf" {
					v := s.value
					sr.inf = &v
					continue
				}
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("obs: line %d: non-numeric le %q", s.line, le)
				}
				sr.buckets[b] = s.value
			case fam + "_count":
				sr := get(fam, seriesKey(s.labels, ""))
				v := s.value
				sr.count = &v
			}
		}
	}
	fams := make([]string, 0, len(hists))
	for fam := range hists {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		keys := make([]string, 0, len(hists[fam]))
		for k := range hists[fam] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			sr := hists[fam][key]
			if sr.inf == nil {
				return fmt.Errorf("obs: histogram %s{%s} has no +Inf bucket", fam, key)
			}
			les := make([]float64, 0, len(sr.buckets))
			for le := range sr.buckets {
				les = append(les, le)
			}
			sort.Float64s(les)
			prev := 0.0
			for _, le := range les {
				if sr.buckets[le] < prev {
					return fmt.Errorf("obs: histogram %s{%s}: bucket le=%v count %v below previous %v (not cumulative)",
						fam, key, le, sr.buckets[le], prev)
				}
				prev = sr.buckets[le]
			}
			if *sr.inf < prev {
				return fmt.Errorf("obs: histogram %s{%s}: +Inf bucket %v below le=%v", fam, key, *sr.inf, prev)
			}
			if sr.count != nil && *sr.count != *sr.inf {
				return fmt.Errorf("obs: histogram %s{%s}: _count %v != +Inf bucket %v", fam, key, *sr.count, *sr.inf)
			}
		}
	}
	return nil
}

// seriesKey renders the labels (minus skip) as a stable identity string.
func seriesKey(labels map[string]string, skip string) string {
	names := make([]string, 0, len(labels))
	for n := range labels {
		if n != skip {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString("=")
		b.WriteString(labels[n])
	}
	return b.String()
}
