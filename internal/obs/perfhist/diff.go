package perfhist

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// AllowEntry waives one expected regression: the named metric of one
// kernel/layout row may exceed the threshold. Reason is mandatory — the
// allowlist is the audit trail for accepted regressions.
type AllowEntry struct {
	Kernel string `json:"kernel"`
	Layout string `json:"layout"`
	Metric string `json:"metric"`
	Reason string `json:"reason"`
}

// Allowlist is the parsed BENCH_ALLOWLIST.json.
type Allowlist struct {
	Entries []AllowEntry `json:"entries"`
}

// LoadAllowlist reads the allowlist; a missing file is an empty allowlist.
func LoadAllowlist(path string) (*Allowlist, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Allowlist{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("perfhist: %w", err)
	}
	var a Allowlist
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, fmt.Errorf("perfhist: %s: %w", path, err)
	}
	for i, e := range a.Entries {
		if e.Kernel == "" || e.Metric == "" || e.Reason == "" {
			return nil, fmt.Errorf("perfhist: %s: entry %d must carry kernel, metric and reason", path, i)
		}
	}
	return &a, nil
}

// allows reports whether the allowlist waives metric on the given row.
func (a *Allowlist) allows(kernel, layout, metric string) (string, bool) {
	for _, e := range a.Entries {
		if e.Kernel == kernel && e.Metric == metric && (e.Layout == "" || e.Layout == layout) {
			return e.Reason, true
		}
	}
	return "", false
}

// Regression is one gate violation.
type Regression struct {
	Kernel string
	Layout string
	Metric string
	Base   float64
	Head   float64
	// Class names the cost class with the largest attributed-cycle increase
	// when the metric is modeled_cycles and both sides carry attribution.
	Class string
	// ClassDelta is that class's attributed-cycle increase.
	ClassDelta float64
}

func (r Regression) String() string {
	s := fmt.Sprintf("%s/%s: %s regressed %.2f%%: %v -> %v",
		r.Kernel, r.Layout, r.Metric, 100*(r.Head/r.Base-1), r.Base, r.Head)
	if r.Class != "" {
		s += fmt.Sprintf(" (largest class increase: %s, +%.0f cycles)", r.Class, r.ClassDelta)
	}
	return s
}

// Options tunes Compare.
type Options struct {
	// Tol is the relative regression threshold (default 0.02 = 2%).
	Tol float64
	// AllocEps is the absolute allocs/op slack added on top of Tol; alloc
	// counts carry a few objects of runtime noise (GC timing) per run.
	AllocEps float64
	// SkipAllocs disables the allocs/op gate (set when the baseline was
	// written by a different Go toolchain: allocation counts are a property
	// of the compiler as much as the code).
	SkipAllocs bool
}

func (o *Options) defaults() {
	if o.Tol == 0 {
		o.Tol = 0.02
	}
	if o.AllocEps == 0 {
		o.AllocEps = 8
	}
}

// Compare gates head against base on the deterministic series only: modeled
// cycles (with a per-cost-class diff naming the class that grew most) and
// cooperative allocs/op. Rows present in base but missing from head are
// regressions too — coverage silently disappearing must not pass the gate.
// Waived regressions are dropped; the returned slice is sorted by row key.
func Compare(base, head *Report, allow *Allowlist, opts Options) []Regression {
	opts.defaults()
	if allow == nil {
		allow = &Allowlist{}
	}
	var regs []Regression
	add := func(r Regression) {
		if _, ok := allow.allows(r.Kernel, r.Layout, r.Metric); !ok {
			regs = append(regs, r)
		}
	}
	keys := make([]string, 0, len(base.Rows))
	for key := range base.Rows {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		b := base.Rows[key]
		h, ok := head.Rows[key]
		if !ok {
			add(Regression{Kernel: b.Kernel, Layout: b.Layout, Metric: "row", Base: b.ModeledCycles})
			continue
		}
		if b.ModeledCycles > 0 && h.ModeledCycles > b.ModeledCycles*(1+opts.Tol) {
			r := Regression{
				Kernel: b.Kernel, Layout: b.Layout, Metric: "modeled_cycles",
				Base: b.ModeledCycles, Head: h.ModeledCycles,
			}
			r.Class, r.ClassDelta = worstClass(b.Attribution, h.Attribution)
			add(r)
		}
		if !opts.SkipAllocs && b.CoopAllocsOp > 0 &&
			h.CoopAllocsOp > b.CoopAllocsOp*(1+opts.Tol)+opts.AllocEps {
			add(Regression{
				Kernel: b.Kernel, Layout: b.Layout, Metric: "cooperative_allocs_per_op",
				Base: b.CoopAllocsOp, Head: h.CoopAllocsOp,
			})
		}
	}
	return regs
}

// worstClass returns the cost class whose attributed cycles grew most from
// base to head, with the increase; empty when either side lacks attribution
// or nothing grew.
func worstClass(base, head map[string]float64) (string, float64) {
	if len(base) == 0 || len(head) == 0 {
		return "", 0
	}
	names := make([]string, 0, len(head))
	for name := range head {
		names = append(names, name)
	}
	sort.Strings(names)
	worst, delta := "", 0.0
	for _, name := range names {
		if d := head[name] - base[name]; d > delta {
			worst, delta = name, d
		}
	}
	return worst, delta
}
