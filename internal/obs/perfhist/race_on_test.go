//go:build race

package perfhist

// raceEnabled reports whether the race detector is compiled in; the
// allocs/op gate skips under it because race instrumentation allocates.
const raceEnabled = true
