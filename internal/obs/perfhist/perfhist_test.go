package perfhist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

const histV1 = `{
  "generated": "2026-01-01T00:00:00Z", "go_version": "go1.24.0",
  "kernels": [
    {"kernel": "bfs", "modeled_cycles": 1000, "cooperative_wall_ns_per_op": 2000,
     "cooperative_allocs_per_op": 100},
    {"kernel": "cc", "layout": "csr", "modeled_cycles": 500,
     "cooperative_wall_ns_per_op": 1000, "cooperative_allocs_per_op": 50}
  ]
}`

// Same code, runner twice as slow: wall doubles, deterministic series hold.
const histV2 = `{
  "schema_version": 2,
  "generated": "2026-02-01T00:00:00Z", "go_version": "go1.24.0",
  "kernels": [
    {"kernel": "bfs", "layout": "csr", "modeled_cycles": 1000,
     "cooperative_wall_ns_per_op": 4000, "cooperative_allocs_per_op": 100,
     "cycle_attribution": {"valu": 600, "barrier": 400}},
    {"kernel": "cc", "layout": "csr", "modeled_cycles": 500,
     "cooperative_wall_ns_per_op": 2000, "cooperative_allocs_per_op": 50,
     "cycle_attribution": {"gather_scatter": 500}}
  ]
}`

func TestLoadAndTrajectory(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "BENCH_1.json", histV1)
	writeFile(t, dir, "BENCH_2.json", histV2)
	writeFile(t, dir, "BENCH_3.json", `{"p50_ms": 1.5, "classes": {}}`) // serve-load schema
	writeFile(t, dir, "OTHER.json", `{}`)

	hist, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(hist.Reports))
	}
	if len(hist.Skipped) != 1 || hist.Skipped[0] != "BENCH_3.json" {
		t.Fatalf("skipped = %v, want [BENCH_3.json]", hist.Skipped)
	}
	// The untagged legacy row normalizes to layout csr, so the two reports
	// share both rows.
	if hist.Latest().Seq != 2 {
		t.Fatalf("latest seq = %d, want 2", hist.Latest().Seq)
	}
	if _, ok := hist.Reports[0].Rows["bfs/csr"]; !ok {
		t.Fatal("legacy untagged row did not normalize to bfs/csr")
	}

	var buf strings.Builder
	hist.WriteTrajectory(&buf)
	out := buf.String()
	// Runner drift: wall doubled while modeled cycles held, so the raw wall
	// ratio and the drift anchor are both +100% and the normalized wall is
	// +0.0% — the trajectory says "slower runner, same code".
	for _, want := range []string{"BENCH_2.json", "+100.0%", "+0.0%", "BENCH_3.json"} {
		if !strings.Contains(out, want) {
			t.Errorf("trajectory missing %q:\n%s", want, out)
		}
	}
}

// TestCompareInjectedRegression injects a ≥2% modeled-cycle regression into
// a synthetic head and checks the gate fails naming the kernel AND the cost
// class that grew, while the unchanged head passes, sub-threshold noise
// passes, and an allowlist entry waives the failure.
func TestCompareInjectedRegression(t *testing.T) {
	base := &Report{Rows: map[string]Row{
		"bfs/csr": {Kernel: "bfs", Layout: "csr", ModeledCycles: 100000,
			CoopAllocsOp: 1000,
			Attribution:  map[string]float64{"valu": 60000, "barrier": 40000}},
	}}
	clean := &Report{Rows: map[string]Row{
		"bfs/csr": {Kernel: "bfs", Layout: "csr", ModeledCycles: 100000,
			CoopAllocsOp: 1004, // inside Tol+AllocEps
			Attribution:  map[string]float64{"valu": 60000, "barrier": 40000}},
	}}
	if regs := Compare(base, clean, nil, Options{}); len(regs) != 0 {
		t.Fatalf("clean head flagged: %v", regs)
	}

	regressed := &Report{Rows: map[string]Row{
		"bfs/csr": {Kernel: "bfs", Layout: "csr", ModeledCycles: 103000,
			CoopAllocsOp: 1000,
			Attribution:  map[string]float64{"valu": 60000, "barrier": 43000}},
	}}
	regs := Compare(base, regressed, nil, Options{})
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	msg := regs[0].String()
	for _, want := range []string{"bfs/csr", "modeled_cycles", "barrier"} {
		if !strings.Contains(msg, want) {
			t.Errorf("regression %q does not name %q", msg, want)
		}
	}

	allow := &Allowlist{Entries: []AllowEntry{{
		Kernel: "bfs", Layout: "csr", Metric: "modeled_cycles",
		Reason: "accepted: new barrier accounting",
	}}}
	if regs := Compare(base, regressed, allow, Options{}); len(regs) != 0 {
		t.Fatalf("allowlisted regression still flagged: %v", regs)
	}
}

func TestCompareAllocAndMissingRow(t *testing.T) {
	base := &Report{Rows: map[string]Row{
		"bfs/csr": {Kernel: "bfs", Layout: "csr", ModeledCycles: 1000, CoopAllocsOp: 1000},
		"cc/csr":  {Kernel: "cc", Layout: "csr", ModeledCycles: 1000, CoopAllocsOp: 1000},
	}}
	head := &Report{Rows: map[string]Row{
		"bfs/csr": {Kernel: "bfs", Layout: "csr", ModeledCycles: 1000, CoopAllocsOp: 1100},
	}}
	regs := Compare(base, head, nil, Options{})
	if len(regs) != 2 {
		t.Fatalf("got %v, want alloc regression + missing row", regs)
	}
	if regs[0].Metric != "cooperative_allocs_per_op" || regs[1].Metric != "row" {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if regs := Compare(base, head, nil, Options{SkipAllocs: true}); len(regs) != 1 {
		t.Fatalf("SkipAllocs still gates allocs: %v", regs)
	}
}

func TestAllowlistValidation(t *testing.T) {
	dir := t.TempDir()
	if a, err := LoadAllowlist(filepath.Join(dir, "absent.json")); err != nil || len(a.Entries) != 0 {
		t.Fatalf("missing allowlist: a=%v err=%v, want empty", a, err)
	}
	writeFile(t, dir, "bad.json", `{"entries": [{"kernel": "bfs", "metric": "modeled_cycles"}]}`)
	if _, err := LoadAllowlist(filepath.Join(dir, "bad.json")); err == nil {
		t.Fatal("entry without reason accepted")
	}
}
