package perfhist

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernels"
)

// MeasureHead re-measures the deterministic series of the committed
// benchmark configuration — every paper kernel on RMAT(12, 8, 16, 42), the
// cooperative scheduler, csr and (where the baseline has a row) forced sell
// layout — directly from the working tree. Modeled cycles and their
// attribution are bit-reproducible, so comparing the result against the
// last accepted report needs no benchmark runner, no repeated sampling and
// no wall-clock at all: any difference is a real change in the code.
//
// Allocs/op mimics the harness (runtime.MemStats around three back-to-back
// runs, after a warm-up run outside the window so lazily-initialized
// package state is not billed to the first sample).
func MeasureHead(baseline *Report) (*Report, error) {
	raw := graph.RMAT(12, 8, 16, 42)
	head := &Report{GoVersion: runtime.Version(), Rows: map[string]Row{}}
	layouts := []struct {
		name string
		lay  core.Layout
	}{
		{"csr", core.LayoutCSR},
		{"sell", core.LayoutSell},
	}
	for _, k := range kernels.All() {
		g := core.PrepareGraph(k, raw)
		for _, lt := range layouts {
			if _, ok := baseline.Rows[k.Name+"/"+lt.name]; !ok {
				// The baseline has no such row (e.g. the sell layout does not
				// apply to this kernel); nothing to gate.
				continue
			}
			cfg := core.Config{Src: g.MaxDegreeNode(), Layout: lt.lay, HostExec: core.HostCooperative}
			if _, err := core.Run(k, g, cfg); err != nil {
				return nil, fmt.Errorf("perfhist: %s/%s: %w", k.Name, lt.name, err)
			}
			const runs = 3
			var last *core.Result
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			for i := 0; i < runs; i++ {
				res, err := core.Run(k, g, cfg)
				if err != nil {
					return nil, fmt.Errorf("perfhist: %s/%s: %w", k.Name, lt.name, err)
				}
				last = res
			}
			runtime.ReadMemStats(&ms1)
			attr := last.Engine.Attribution()
			row := Row{
				Kernel:        k.Name,
				Layout:        lt.name,
				ModeledCycles: last.Engine.TimeCycles(),
				CoopAllocsOp:  float64(ms1.Mallocs-ms0.Mallocs) / runs,
				LaneUtil:      last.Stats.LaneUtilization(last.Engine.Width()),
				Attribution:   attr.ClassMap(),
			}
			head.Rows[row.Key()] = row
		}
	}
	return head, nil
}
