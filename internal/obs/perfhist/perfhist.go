// Package perfhist turns the repo's committed BENCH_*.json reports into a
// performance trajectory and a drift-free regression gate.
//
// The central idea: the reports mix two kinds of series. Deterministic
// series — modeled cycles (and their per-cost-class attribution), allocs/op,
// lane utilization, L1 hit rate — are properties of the code alone and are
// bit-reproducible on any machine, so a change between two reports is a real
// change in the program. Wall-clock series (ns/op) additionally embed the
// speed of whatever runner happened to execute `make bench` that day, so
// comparing them raw across reports measures the hardware as much as the
// code. perfhist separates the two: it gates regressions ONLY on
// deterministic series, and it normalizes wall series by a per-report drift
// anchor — the geomean ns-per-modeled-cycle over the rows two reports share —
// which quantifies runner drift and makes the normalized wall trajectory
// meaningful across runners.
package perfhist

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
)

// Row is one kernel/layout point of one report: the deterministic series
// plus the raw wall-clock columns.
type Row struct {
	Kernel        string
	Layout        string
	ModeledCycles float64
	CoopWallNsOp  float64
	ParWallNsOp   float64
	CoopAllocsOp  float64
	ParAllocsOp   float64
	LaneUtil      float64
	L1HitRate     float64
	// Attribution holds the per-cost-class modeled-cycle totals (schema v2
	// reports; nil before that).
	Attribution map[string]float64
}

// Key is the row's identity across reports.
func (r *Row) Key() string { return r.Kernel + "/" + r.Layout }

// Report is one parsed BENCH_N.json host-execution report.
type Report struct {
	Seq           int
	Path          string
	SchemaVersion int
	Generated     string
	GoVersion     string
	Rows          map[string]Row
}

// History is the ordered sequence of host-execution reports found in a
// directory, plus the BENCH files skipped because they follow another schema
// (e.g. the serve-load latency report).
type History struct {
	Reports []Report
	Skipped []string
}

var benchFileRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// Load reads every BENCH_<n>.json in dir, in ascending n. Files without a
// kernels array are recorded in Skipped, not errors: the BENCH_ prefix is
// shared with other report families.
func Load(dir string) (*History, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("perfhist: %w", err)
	}
	h := &History{}
	for _, e := range entries {
		m := benchFileRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		seq := 0
		fmt.Sscanf(m[1], "%d", &seq)
		path := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("perfhist: %w", err)
		}
		rep, ok, err := parseReport(raw)
		if err != nil {
			return nil, fmt.Errorf("perfhist: %s: %w", e.Name(), err)
		}
		if !ok {
			h.Skipped = append(h.Skipped, e.Name())
			continue
		}
		rep.Seq = seq
		rep.Path = path
		h.Reports = append(h.Reports, rep)
	}
	sort.Slice(h.Reports, func(i, j int) bool { return h.Reports[i].Seq < h.Reports[j].Seq })
	sort.Strings(h.Skipped)
	return h, nil
}

// parseReport decodes one report; ok=false when the file is valid JSON but
// not a host-execution report (no kernels array).
func parseReport(raw []byte) (Report, bool, error) {
	var doc struct {
		SchemaVersion int    `json:"schema_version"`
		Generated     string `json:"generated"`
		GoVersion     string `json:"go_version"`
		Kernels       []struct {
			Kernel           string             `json:"kernel"`
			Layout           string             `json:"layout"`
			ModeledCycles    float64            `json:"modeled_cycles"`
			CoopWallNsOp     float64            `json:"cooperative_wall_ns_per_op"`
			ParWallNsOp      float64            `json:"parallel_wall_ns_per_op"`
			CoopAllocsOp     float64            `json:"cooperative_allocs_per_op"`
			ParAllocsOp      float64            `json:"parallel_allocs_per_op"`
			LaneUtil         float64            `json:"lane_utilization"`
			L1HitRate        float64            `json:"l1_hit_rate"`
			CycleAttribution map[string]float64 `json:"cycle_attribution"`
		} `json:"kernels"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return Report{}, false, err
	}
	if len(doc.Kernels) == 0 {
		return Report{}, false, nil
	}
	rep := Report{
		SchemaVersion: doc.SchemaVersion,
		Generated:     doc.Generated,
		GoVersion:     doc.GoVersion,
		Rows:          make(map[string]Row, len(doc.Kernels)),
	}
	for _, k := range doc.Kernels {
		lay := k.Layout
		if lay == "" {
			lay = "csr" // pre-layout reports carry no tag
		}
		row := Row{
			Kernel:        k.Kernel,
			Layout:        lay,
			ModeledCycles: k.ModeledCycles,
			CoopWallNsOp:  k.CoopWallNsOp,
			ParWallNsOp:   k.ParWallNsOp,
			CoopAllocsOp:  k.CoopAllocsOp,
			ParAllocsOp:   k.ParAllocsOp,
			LaneUtil:      k.LaneUtil,
			L1HitRate:     k.L1HitRate,
			Attribution:   k.CycleAttribution,
		}
		rep.Rows[row.Key()] = row
	}
	return rep, true, nil
}

// Latest returns the highest-numbered report, nil on an empty history.
func (h *History) Latest() *Report {
	if len(h.Reports) == 0 {
		return nil
	}
	return &h.Reports[len(h.Reports)-1]
}

// anchor is the drift anchor between two reports: the geomean, over the rows
// both carry with timed cooperative columns, of ns-per-modeled-cycle in cur
// divided by ns-per-modeled-cycle in prev. Modeled cycles cancel per row
// when the code is unchanged, so the anchor isolates runner speed; when the
// code did change, it still measures relative runner throughput because the
// modeled clock moves with the real work. Returns 0 when no row is shared.
func anchor(prev, cur *Report) float64 {
	prod, n := 1.0, 0
	for key, c := range cur.Rows {
		p, ok := prev.Rows[key]
		if !ok || p.CoopWallNsOp <= 0 || c.CoopWallNsOp <= 0 ||
			p.ModeledCycles <= 0 || c.ModeledCycles <= 0 {
			continue
		}
		prod *= (c.CoopWallNsOp / c.ModeledCycles) / (p.CoopWallNsOp / p.ModeledCycles)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// geomeanRatio folds the per-row cur/prev ratio of one deterministic series
// over the shared rows. sel extracts the series; rows where either side is
// non-positive are skipped.
func geomeanRatio(prev, cur *Report, sel func(*Row) float64) (float64, int) {
	prod, n := 1.0, 0
	for key, c := range cur.Rows {
		p, ok := prev.Rows[key]
		if !ok {
			continue
		}
		pv, cv := sel(&p), sel(&c)
		if pv <= 0 || cv <= 0 {
			continue
		}
		prod *= cv / pv
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return math.Pow(prod, 1/float64(n)), n
}

// WriteTrajectory renders the history as a table: one line per report with
// its deterministic-series geomean ratios against the previous report, the
// runner-drift anchor, and the drift-normalized wall ratio (wall ratio ÷
// anchor — what the wall trend looks like after the runner is factored out).
func (h *History) WriteTrajectory(w io.Writer) {
	fmt.Fprintf(w, "%-14s %-10s %5s %9s %9s %9s %9s %9s\n",
		"report", "go", "rows", "cycles", "allocs", "wall-raw", "drift", "wall-norm")
	for i := range h.Reports {
		r := &h.Reports[i]
		if i == 0 {
			fmt.Fprintf(w, "%-14s %-10s %5d %9s %9s %9s %9s %9s\n",
				filepath.Base(r.Path), r.GoVersion, len(r.Rows),
				"-", "-", "-", "-", "-")
			continue
		}
		prev := &h.Reports[i-1]
		cyc, _ := geomeanRatio(prev, r, func(x *Row) float64 { return x.ModeledCycles })
		al, _ := geomeanRatio(prev, r, func(x *Row) float64 { return x.CoopAllocsOp })
		wall, _ := geomeanRatio(prev, r, func(x *Row) float64 { return x.CoopWallNsOp })
		drift := anchor(prev, r)
		norm := 0.0
		if drift > 0 && wall > 0 {
			norm = wall / drift
		}
		fmt.Fprintf(w, "%-14s %-10s %5d %9s %9s %9s %9s %9s\n",
			filepath.Base(r.Path), r.GoVersion, len(r.Rows),
			ratioStr(cyc), ratioStr(al), ratioStr(wall), ratioStr(drift), ratioStr(norm))
	}
	if len(h.Skipped) > 0 {
		fmt.Fprintf(w, "skipped (other schema): %v\n", h.Skipped)
	}
}

func ratioStr(r float64) string {
	if r <= 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*(r-1))
}
