package perfhist

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestBenchDiff is the drift-free regression gate behind `make bench-diff`:
// load every committed BENCH_*.json, print the trajectory, re-measure the
// deterministic series (modeled cycles with per-class attribution,
// allocs/op) from the working tree, and fail on any >2% regression against
// the last accepted report that BENCH_ALLOWLIST.json does not waive.
//
// Because the modeled series are bit-reproducible, an unchanged tree passes
// on any machine — no runner calibration, no flaky tolerance games. The
// allocs/op gate is skipped (loudly) when the baseline was written by a
// different Go toolchain, since allocation counts are a property of the
// compiler as much as of this repo's code.
func TestBenchDiff(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	hist, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	latest := hist.Latest()
	if latest == nil {
		t.Fatal("no host-execution bench reports found at the repo root")
	}
	var buf strings.Builder
	hist.WriteTrajectory(&buf)
	t.Logf("performance trajectory (%d reports):\n%s", len(hist.Reports), buf.String())

	if latest.SchemaVersion < 2 {
		t.Fatalf("latest report %s has schema_version %d; the gate needs the v2 cycle_attribution columns — run `make bench`",
			filepath.Base(latest.Path), latest.SchemaVersion)
	}
	allow, err := LoadAllowlist(filepath.Join(root, "BENCH_ALLOWLIST.json"))
	if err != nil {
		t.Fatal(err)
	}
	head, err := MeasureHead(latest)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{}
	if latest.GoVersion != runtime.Version() {
		opts.SkipAllocs = true
		t.Logf("allocs/op gate skipped: baseline written by %s, this toolchain is %s",
			latest.GoVersion, runtime.Version())
	}
	if raceEnabled {
		opts.SkipAllocs = true
		t.Log("allocs/op gate skipped: race-detector instrumentation allocates")
	}
	for _, r := range Compare(latest, head, allow, opts) {
		t.Errorf("regression vs %s: %s", filepath.Base(latest.Path), r)
	}
}
