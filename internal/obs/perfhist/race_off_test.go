//go:build !race

package perfhist

const raceEnabled = false
