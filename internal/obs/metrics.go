package obs

import (
	"encoding/json"
	"io"
	"os"
)

// IterSample is one row of the per-iteration time series: a snapshot taken at
// a pipe-loop iteration boundary. Counter fields are deltas since the
// previous sample (so each row describes one iteration); Cycles is the
// absolute modeled clock at the boundary. Every field derives from modeled
// state, so the series is identical across host-execution modes.
type IterSample struct {
	Loop         string  `json:"loop"`
	Iter         int64   `json:"iter"`
	Cycles       float64 `json:"cycles"`
	Frontier     int64   `json:"frontier"`
	WorklistCap  int64   `json:"worklist_cap,omitempty"`
	Occupancy    float64 `json:"occupancy,omitempty"`
	Instructions int64   `json:"instructions"`
	VectorOps    int64   `json:"vector_ops"`
	ScalarOps    int64   `json:"scalar_ops"`
	Atomics      int64   `json:"atomics"`
	AtomicPushes int64   `json:"atomic_pushes"`
	WorkItems    int64   `json:"work_items"`
	LaneUtil     float64 `json:"lane_utilization"`
	MemAccesses  int64   `json:"mem_accesses"`
	L1Hits       int64   `json:"l1_hits"`
	L2Hits       int64   `json:"l2_hits"`
	L3Hits       int64   `json:"l3_hits"`
	MemMisses    int64   `json:"mem_misses"`
	PageFaults   int64   `json:"page_faults"`
}

// DefaultMetricsCapacity bounds the ring for capacity <= 0; graph-analytics
// pipe loops converge in far fewer rounds than this on evaluation inputs.
const DefaultMetricsCapacity = 1 << 14

// Metrics is a pre-sized ring of iteration samples. When full, the oldest
// row is overwritten (and counted) rather than growing the buffer, so the
// append path never allocates. Like Tracer it relies on the engine's
// single-writer recording points instead of internal locking.
type Metrics struct {
	rows    []IterSample
	next    int // ring head, meaningful once full
	full    bool
	dropped int64
}

// NewMetrics creates a ring holding capacity samples (DefaultMetricsCapacity
// when <= 0).
func NewMetrics(capacity int) *Metrics {
	if capacity <= 0 {
		capacity = DefaultMetricsCapacity
	}
	return &Metrics{rows: make([]IterSample, 0, capacity)}
}

// Append records one sample, overwriting the oldest when the ring is full.
func (m *Metrics) Append(s IterSample) {
	if len(m.rows) < cap(m.rows) {
		m.rows = append(m.rows, s)
		return
	}
	m.rows[m.next] = s
	m.next = (m.next + 1) % len(m.rows)
	m.full = true
	m.dropped++
}

// Len returns the number of retained samples.
func (m *Metrics) Len() int { return len(m.rows) }

// Dropped returns how many old samples were overwritten by ring wraparound.
func (m *Metrics) Dropped() int64 { return m.dropped }

// Rows returns the retained samples in chronological order (copied).
func (m *Metrics) Rows() []IterSample {
	if !m.full {
		return append([]IterSample(nil), m.rows...)
	}
	out := make([]IterSample, 0, len(m.rows))
	out = append(out, m.rows[m.next:]...)
	out = append(out, m.rows[:m.next]...)
	return out
}

// WriteJSONL emits one JSON object per line in chronological order.
func (m *Metrics) WriteJSONL(w io.Writer) error {
	for _, row := range m.Rows() {
		b, err := json.Marshal(row)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the JSONL series to path.
func (m *Metrics) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
