package obs

import (
	"os"
	"strings"
	"testing"
)

const validReport = `{
  "generated": "2026-08-08T00:00:00Z",
  "go_version": "go1.24",
  "backend_wall_geomean": 2.4,
  "kernels": [
    {"kernel": "cc", "graph": "rmat12", "layout": "csr", "modeled_cycles": 100,
     "lane_utilization": 0.9, "l1_hit_rate": 0.95,
     "interp_wall_ns_per_op": 2000, "compiled_wall_ns_per_op": 1000,
     "backend_wall_speedup": 2.0},
    {"kernel": "cc", "graph": "rmat12", "layout": "sell", "modeled_cycles": 90,
     "lane_utilization": 0.9, "sell_lane_utilization": 0.98,
     "sell_padding_overhead": 1.05, "sell_fallback_ratio": 0.3, "sell_columns": 123},
    {"kernel": "pr", "graph": "rmat12", "modeled_cycles": 200}
  ]
}`

func TestValidateBenchReport(t *testing.T) {
	if err := ValidateBenchReport([]byte(validReport)); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := []struct {
		name, from, to, want string
	}{
		{"missing generated", `"generated": "2026-08-08T00:00:00Z"`, `"generated": ""`, "generated"},
		{"zero cycles", `"modeled_cycles": 200`, `"modeled_cycles": 0`, "modeled_cycles"},
		{"bad layout", `"layout": "csr"`, `"layout": "coo"`, "unknown layout"},
		{"util range", `"sell_lane_utilization": 0.98`, `"sell_lane_utilization": 1.5`, "sell_lane_utilization"},
		{"padding range", `"sell_padding_overhead": 1.05`, `"sell_padding_overhead": 0.5`, "sell_padding_overhead"},
		{"fallback range", `"sell_fallback_ratio": 0.3`, `"sell_fallback_ratio": -0.1`, "sell_fallback_ratio"},
		{"sell row incomplete", `"sell_columns": 123`, `"sell_columns_x": 123`, "sell row missing"},
		{"duplicate", `"layout": "sell"`, `"layout": "csr"`, "duplicate"},
		{"negative backend ns", `"interp_wall_ns_per_op": 2000`, `"interp_wall_ns_per_op": -1`, "negative backend"},
		{"unpaired backend column", `"compiled_wall_ns_per_op": 1000`, `"compiled_wall_ns_per_op": 0`, "interp+compiled pairs"},
		{"missing backend speedup", `"backend_wall_speedup": 2.0`, `"backend_wall_speedup": 0`, "missing backend_wall_speedup"},
		{"inconsistent backend speedup", `"backend_wall_speedup": 2.0`, `"backend_wall_speedup": 3.0`, "want interp/compiled"},
		{"geomean without rows", `"interp_wall_ns_per_op": 2000, "compiled_wall_ns_per_op": 1000,
     "backend_wall_speedup": 2.0`, `"interp_wall_ns_per_op": 0, "compiled_wall_ns_per_op": 0,
     "backend_wall_speedup": 0`, "no row carries backend columns"},
		{"rows without geomean", `"backend_wall_geomean": 2.4`, `"backend_wall_geomean": 0`, "no backend_wall_geomean"},
		{"negative geomean", `"backend_wall_geomean": 2.4`, `"backend_wall_geomean": -2.4`, "backend_wall_geomean"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			doc := strings.Replace(validReport, tc.from, tc.to, 1)
			if doc == validReport {
				t.Fatalf("mutation %q did not apply", tc.from)
			}
			err := ValidateBenchReport([]byte(doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
	if err := ValidateBenchReport([]byte(`{"generated":"x","go_version":"y","kernels":[]}`)); err == nil {
		t.Fatal("empty kernels accepted")
	}
	if err := ValidateBenchReport([]byte(`not json`)); err == nil {
		t.Fatal("non-JSON accepted")
	}
}

// validReportV2 is a schema_version 2 report: every row carries a
// cycle_attribution map whose class totals sum to modeled_cycles exactly.
const validReportV2 = `{
  "schema_version": 2,
  "generated": "2026-08-08T00:00:00Z",
  "go_version": "go1.24",
  "kernels": [
    {"kernel": "cc", "graph": "rmat12", "layout": "csr", "modeled_cycles": 100,
     "cycle_attribution": {"valu": 60, "barrier": 40}},
    {"kernel": "pr", "graph": "rmat12", "modeled_cycles": 200.5,
     "cycle_attribution": {"gather_scatter": 150.25, "launch": 50.25}}
  ]
}`

// TestValidateBenchReportVersioned mutation-tests the schema-version gate
// and the per-row attribution checks added in version 2: a future version is
// rejected (not silently accepted with its fields ignored), version 2 rows
// must carry attribution with known class names, non-negative values and a
// bit-exact re-fold to modeled_cycles, and legacy reports must not smuggle
// attribution in without declaring the version.
func TestValidateBenchReportVersioned(t *testing.T) {
	if err := ValidateBenchReport([]byte(validReportV2)); err != nil {
		t.Fatalf("valid v2 report rejected: %v", err)
	}
	bad := []struct {
		name, from, to, want string
	}{
		{"future version", `"schema_version": 2`, `"schema_version": 4`, "unknown schema_version"},
		{"negative version", `"schema_version": 2`, `"schema_version": -1`, "unknown schema_version"},
		{"missing attribution", `"cycle_attribution": {"valu": 60, "barrier": 40}`,
			`"cycle_attribution_x": {"valu": 60, "barrier": 40}`, "missing cycle_attribution"},
		{"unknown class", `"valu": 60`, `"warp_divergence": 60`, "unknown cost class"},
		{"negative class total", `"barrier": 40`, `"barrier": -40`, "want >= 0"},
		{"sum mismatch", `"barrier": 40`, `"barrier": 40.5`, "must match bit-exactly"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			doc := strings.Replace(validReportV2, tc.from, tc.to, 1)
			if doc == validReportV2 {
				t.Fatalf("mutation %q did not apply", tc.from)
			}
			err := ValidateBenchReport([]byte(doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
	// A legacy (unversioned) report carrying attribution is inconsistent.
	doc := strings.Replace(validReport, `"modeled_cycles": 200}`,
		`"modeled_cycles": 200, "cycle_attribution": {"valu": 200}}`, 1)
	err := ValidateBenchReport([]byte(doc))
	if err == nil || !strings.Contains(err.Error(), "predates") {
		t.Fatalf("legacy report with attribution: err = %v, want version mismatch", err)
	}
}

// validReportV3 is a schema_version 3 report carrying the optional mutation
// section next to the kernel rows (query_p99_ratio = 4.2/3.0 exactly).
const validReportV3 = `{
  "schema_version": 3,
  "generated": "2026-08-08T00:00:00Z",
  "go_version": "go1.24",
  "kernels": [
    {"kernel": "cc", "graph": "rmat12", "layout": "csr", "modeled_cycles": 100,
     "cycle_attribution": {"valu": 60, "barrier": 40}}
  ],
  "mutation": {
    "graph": "road-64x64",
    "static_p50_ms": 1.2, "static_p99_ms": 3.0,
    "mutating_p50_ms": 1.5, "mutating_p99_ms": 4.2,
    "query_p99_ratio": 1.4,
    "update_ops_per_sec": 85000,
    "queries_per_arm": 200,
    "final_epoch": 12
  }
}`

// TestValidateBenchReportMutation mutation-tests the version-3 mutation
// section: internal consistency of the two latency arms, the derived p99
// ratio, positive throughput and query counts, and the version gate (a
// pre-v3 report must not carry the section).
func TestValidateBenchReportMutation(t *testing.T) {
	if err := ValidateBenchReport([]byte(validReportV3)); err != nil {
		t.Fatalf("valid v3 report rejected: %v", err)
	}
	bad := []struct {
		name, from, to, want string
	}{
		{"version gate", `"schema_version": 3`, `"schema_version": 2`, "predates"},
		{"missing graph", `"graph": "road-64x64"`, `"graph": ""`, "missing graph"},
		{"zero latency", `"static_p50_ms": 1.2`, `"static_p50_ms": 0`, "must all be > 0"},
		{"static p99 below p50", `"static_p99_ms": 3.0`, `"static_p99_ms": 0.9`, "below p50"},
		{"mutating p99 below p50", `"mutating_p99_ms": 4.2`, `"mutating_p99_ms": 1.1`, "below p50"},
		{"inconsistent ratio", `"query_p99_ratio": 1.4`, `"query_p99_ratio": 2.8`, "want mutating/static"},
		{"zero throughput", `"update_ops_per_sec": 85000`, `"update_ops_per_sec": 0`, "update_ops_per_sec"},
		{"zero queries", `"queries_per_arm": 200`, `"queries_per_arm": 0`, "queries_per_arm"},
		{"zero epoch", `"final_epoch": 12`, `"final_epoch": 0`, "final_epoch"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			doc := strings.Replace(validReportV3, tc.from, tc.to, 1)
			if doc == validReportV3 {
				t.Fatalf("mutation %q did not apply", tc.from)
			}
			err := ValidateBenchReport([]byte(doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestValidateBenchFile validates a committed report when EGACS_BENCH_FILE
// points at one (CI runs it against the repo's BENCH_7.json).
func TestValidateBenchFile(t *testing.T) {
	path := os.Getenv("EGACS_BENCH_FILE")
	if path == "" {
		t.Skip("EGACS_BENCH_FILE not set")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchReport(raw); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
}
