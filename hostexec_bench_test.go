// Host-execution benchmark: wall-clock cost of the cooperative reference
// scheduler vs. the parallel scheduler, per kernel, with modeled cycles
// recorded alongside to show they are mode-independent.
//
// `make bench` runs this with BENCH_OUT=BENCH_2.json, which makes TestMain
// write a machine-readable report after the run. The wall-clock speedup
// column is only meaningful on a multi-core runner: with GOMAXPROCS=1 the
// parallel scheduler degenerates to one goroutine per task on one core and
// speedup hovers around 1x.
package repro_test

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/obs"
)

// hostExecSample accumulates both modes' timings for one kernel and graph
// layout, plus the observability annotations from one instrumented (untimed)
// run. Layout "csr" rows are the calibrated paper configuration; "sell" rows
// rerun the kernel with the SELL-C-σ layout forced, so the report carries a
// per-kernel CSR-vs-SELL comparison (kernels where the layout cannot apply —
// order-sensitive float kernels, worklist-driven programs — have no sell
// row).
type hostExecSample struct {
	Kernel        string  `json:"kernel"`
	Graph         string  `json:"graph"`
	Layout        string  `json:"layout,omitempty"`
	ModeledCycles float64 `json:"modeled_cycles"`
	CoopWallNsOp  float64 `json:"cooperative_wall_ns_per_op"`
	ParWallNsOp   float64 `json:"parallel_wall_ns_per_op"`
	Speedup       float64 `json:"wall_speedup"`
	CoopAllocsOp  float64 `json:"cooperative_allocs_per_op"`
	CoopBytesOp   float64 `json:"cooperative_bytes_per_op"`
	ParAllocsOp   float64 `json:"parallel_allocs_per_op"`
	ParBytesOp    float64 `json:"parallel_bytes_per_op"`
	CoopNsVsBase  float64 `json:"cooperative_ns_ratio_vs_baseline,omitempty"`
	// Backend comparison (csr rows): the same kernel and cooperative
	// scheduler timed once with the interpreter pinned and once with the
	// generated-Go backend pinned. Both produce bit-identical modeled output
	// (the differential suite in internal/core enforces it); only wall-clock
	// differs, and backend_wall_speedup = interp/compiled.
	InterpWallNsOp   float64 `json:"interp_wall_ns_per_op,omitempty"`
	CompiledWallNsOp float64 `json:"compiled_wall_ns_per_op,omitempty"`
	BackendSpeedup   float64 `json:"backend_wall_speedup,omitempty"`
	LaneUtil         float64 `json:"lane_utilization,omitempty"`
	L1HitRate        float64 `json:"l1_hit_rate,omitempty"`
	TraceEvents      int     `json:"trace_events,omitempty"`
	MetricRows       int     `json:"metric_rows,omitempty"`
	// SELL-specific columns, set on layout "sell" rows (pointers so a
	// legitimate zero — a sweep that never went dense — still serializes,
	// as the schema validator requires).
	SellLaneUtil *float64 `json:"sell_lane_utilization,omitempty"`
	SellPadding  *float64 `json:"sell_padding_overhead,omitempty"`
	SellFallback *float64 `json:"sell_fallback_ratio,omitempty"`
	SellColumns  *int64   `json:"sell_columns,omitempty"`
	// Recovery counters from one instrumented checkpointing run under
	// transient-fault injection (untimed; the timed loops above run with
	// checkpointing off).
	Checkpoints  int     `json:"recovery_checkpoints,omitempty"`
	Rollbacks    int     `json:"recovery_rollbacks,omitempty"`
	BadCkpts     int     `json:"recovery_bad_checkpoints,omitempty"`
	WastedCycles float64 `json:"recovery_wasted_cycles,omitempty"`
	// Per-cost-class modeled-cycle totals, captured from the same engine
	// whose TimeCycles filled ModeledCycles (the cooperative timed loop's
	// last run), so the canonical class-order re-fold reproduces
	// modeled_cycles bit-exactly — the schema validator enforces it.
	CycleAttribution map[string]float64 `json:"cycle_attribution,omitempty"`
}

var hostExecResults = struct {
	sync.Mutex
	byKernel map[string]*hostExecSample
}{byKernel: map[string]*hostExecSample{}}

// hostExecReport is the BENCH_2.json schema (extended with per-layout rows
// and the per-family CSR-vs-SELL cycle deltas since BENCH_7).
type hostExecReport struct {
	SchemaVersion  int                `json:"schema_version"`
	Generated      string             `json:"generated"`
	GoVersion      string             `json:"go_version"`
	NumCPU         int                `json:"num_cpu"`
	GOMAXPROCS     int                `json:"gomaxprocs"`
	Note           string             `json:"note"`
	Kernels        []hostExecSample   `json:"kernels"`
	GeomeanWall    float64            `json:"geomean_wall_speedup"`
	BackendGeomean float64            `json:"backend_wall_geomean,omitempty"`
	LayoutGeomeans map[string]float64 `json:"layout_cycles_geomean_by_family,omitempty"`
}

// layoutFamilyGeomeans holds the untimed per-family modeled-cycles sweep:
// family name -> geomean of csr_cycles/sell_cycles over the dense-sweep
// kernels (>1 means SELL is faster).
var layoutFamilyGeomeans = struct {
	sync.Mutex
	byFamily map[string]float64
}{byFamily: map[string]float64{}}

func hostExecRow(kernel, graphName, layout string) *hostExecSample {
	key := kernel + "/" + layout
	s := hostExecResults.byKernel[key]
	if s == nil {
		s = &hostExecSample{Kernel: kernel, Graph: graphName, Layout: layout}
		hostExecResults.byKernel[key] = s
	}
	return s
}

func recordHostExec(kernel, graphName, layout, mode string, cycles, nsPerOp, allocsOp, bytesOp float64, attrib map[string]float64) {
	hostExecResults.Lock()
	defer hostExecResults.Unlock()
	s := hostExecRow(kernel, graphName, layout)
	s.ModeledCycles = cycles
	switch mode {
	case "cooperative":
		s.CoopWallNsOp = nsPerOp
		s.CoopAllocsOp = allocsOp
		s.CoopBytesOp = bytesOp
		s.CycleAttribution = attrib
	case "parallel":
		s.ParWallNsOp = nsPerOp
		s.ParAllocsOp = allocsOp
		s.ParBytesOp = bytesOp
	}
}

func recordHostExecBackend(kernel, graphName, layout, backend string, nsPerOp float64) {
	hostExecResults.Lock()
	defer hostExecResults.Unlock()
	s := hostExecRow(kernel, graphName, layout)
	switch backend {
	case "interp":
		s.InterpWallNsOp = nsPerOp
	case "compiled":
		s.CompiledWallNsOp = nsPerOp
	}
}

func recordHostExecObs(kernel, graphName, layout string, laneUtil, l1Rate float64, traceEvents, metricRows int) {
	hostExecResults.Lock()
	defer hostExecResults.Unlock()
	s := hostExecRow(kernel, graphName, layout)
	s.LaneUtil = laneUtil
	s.L1HitRate = l1Rate
	s.TraceEvents = traceEvents
	s.MetricRows = metricRows
}

func recordHostExecSell(kernel, graphName string, laneUtil, padding, fallback float64, columns int64) {
	hostExecResults.Lock()
	defer hostExecResults.Unlock()
	s := hostExecRow(kernel, graphName, "sell")
	s.SellLaneUtil = &laneUtil
	s.SellPadding = &padding
	s.SellFallback = &fallback
	s.SellColumns = &columns
}

func recordHostExecRecovery(kernel, graphName, layout string, checkpoints, rollbacks, badCkpts int, wasted float64) {
	hostExecResults.Lock()
	defer hostExecResults.Unlock()
	s := hostExecRow(kernel, graphName, layout)
	s.Checkpoints = checkpoints
	s.Rollbacks = rollbacks
	s.BadCkpts = badCkpts
	s.WastedCycles = wasted
}

// loadBaseline reads the previous benchmark report (BENCH_BASELINE, default
// BENCH_2.json next to BENCH_OUT) for before/after comparison; nil when
// absent or unreadable.
func loadBaseline() map[string]hostExecSample {
	path := os.Getenv("BENCH_BASELINE")
	if path == "" {
		path = "BENCH_2.json"
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var rep hostExecReport
	if json.Unmarshal(raw, &rep) != nil {
		return nil
	}
	base := make(map[string]hostExecSample, len(rep.Kernels))
	for _, s := range rep.Kernels {
		lay := s.Layout
		if lay == "" {
			lay = "csr" // pre-BENCH_7 reports carry no layout tag
		}
		base[s.Kernel+"/"+lay] = s
	}
	return base
}

// writeHostExecReport writes BENCH_OUT if any BenchmarkHostExec sub-benchmark
// ran. Called from TestMain so it fires once, after all sub-benchmarks.
func writeHostExecReport() {
	path := os.Getenv("BENCH_OUT")
	if path == "" {
		return
	}
	hostExecResults.Lock()
	defer hostExecResults.Unlock()
	if len(hostExecResults.byKernel) == 0 {
		return
	}
	rep := hostExecReport{
		SchemaVersion: obs.BenchSchemaVersion,
		Generated:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "modeled_cycles are identical in both modes by construction " +
			"(see DESIGN.md, Execution vs. costing); wall_speedup needs a " +
			"multi-core runner to exceed 1x",
	}
	base := loadBaseline()
	logProd := 1.0
	n := 0
	baseProd := 1.0
	nBase := 0
	beProd := 1.0
	nBe := 0
	for _, s := range hostExecResults.byKernel {
		if s.CoopWallNsOp > 0 && s.ParWallNsOp > 0 {
			s.Speedup = s.CoopWallNsOp / s.ParWallNsOp
			logProd *= s.Speedup
			n++
		}
		if s.InterpWallNsOp > 0 && s.CompiledWallNsOp > 0 {
			s.BackendSpeedup = s.InterpWallNsOp / s.CompiledWallNsOp
			beProd *= s.BackendSpeedup
			nBe++
		}
		if b, ok := base[s.Kernel+"/"+s.Layout]; ok && b.CoopWallNsOp > 0 && s.CoopWallNsOp > 0 {
			s.CoopNsVsBase = s.CoopWallNsOp / b.CoopWallNsOp
			baseProd *= s.CoopNsVsBase
			nBase++
		}
		rep.Kernels = append(rep.Kernels, *s)
	}
	sort.Slice(rep.Kernels, func(i, j int) bool {
		if rep.Kernels[i].Kernel != rep.Kernels[j].Kernel {
			return rep.Kernels[i].Kernel < rep.Kernels[j].Kernel
		}
		return rep.Kernels[i].Layout < rep.Kernels[j].Layout
	})
	if n > 0 {
		rep.GeomeanWall = math.Pow(logProd, 1/float64(n))
	}
	if nBe > 0 {
		rep.BackendGeomean = math.Pow(beProd, 1/float64(nBe))
		rep.Note += fmt.Sprintf("; interp-vs-compiled backend wall geomean (%d kernels, cooperative/csr): %.2fx",
			nBe, rep.BackendGeomean)
	}
	if nBase > 0 {
		rep.Note += fmt.Sprintf("; geomean cooperative ns/op vs baseline (%d rows): %.3fx",
			nBase, math.Pow(baseProd, 1/float64(nBase)))
	}
	layoutFamilyGeomeans.Lock()
	if len(layoutFamilyGeomeans.byFamily) > 0 {
		rep.LayoutGeomeans = layoutFamilyGeomeans.byFamily
		fams := make([]string, 0, len(rep.LayoutGeomeans))
		for f := range rep.LayoutGeomeans {
			fams = append(fams, f)
		}
		sort.Strings(fams)
		rep.Note += "; csr/sell modeled-cycles geomean over dense-sweep kernels:"
		for _, f := range fams {
			rep.Note += fmt.Sprintf(" %s %.3fx", f, rep.LayoutGeomeans[f])
		}
		rep.Note += " (>1 = sell faster)"
	}
	layoutFamilyGeomeans.Unlock()
	out, err := json.MarshalIndent(rep, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(out, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "BENCH_OUT:", err)
		return
	}
	// The committed report is a machine-readable artifact; gate it on the
	// same structural validator CI applies via EGACS_BENCH_FILE.
	if err := obs.ValidateBenchReport(out); err != nil {
		fmt.Fprintf(os.Stderr, "BENCH_OUT: wrote %s but it FAILED validation: %v\n", path, err)
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	writeHostExecReport()
	os.Exit(code)
}

// BenchmarkHostExec times every paper kernel end to end under the
// cooperative reference scheduler and the parallel scheduler. Modeled cycles
// are reported as a custom metric and must agree between the two modes (the
// differential test in internal/core enforces bit-identity; here they are
// recorded for the report).
func BenchmarkHostExec(b *testing.B) {
	raw := graph.RMAT(12, 8, 16, 42)
	modes := []struct {
		name string
		exec core.HostExec
	}{
		{"cooperative", core.HostCooperative},
		{"parallel", core.HostParallel},
	}
	layouts := []struct {
		name string
		lay  core.Layout
	}{
		{"csr", core.LayoutCSR},
		{"sell", core.LayoutSell},
	}
	for _, k := range kernels.All() {
		g := core.PrepareGraph(k, raw)
		for _, lt := range layouts {
			cfg := core.Config{Src: g.MaxDegreeNode(), Layout: lt.lay}
			// One instrumented run per kernel and layout, outside the timed
			// loops, annotates the report row with observability numbers. The
			// modeled timeline is mode-invariant across the deferred
			// schedulers, so one cooperative run speaks for both timed modes.
			// It also decides whether the sell arm applies at all: kernels
			// the layout policy pins to CSR (float-order-sensitive, worklist
			// programs without a dense path) get no sell row.
			icfg := cfg
			icfg.HostExec = core.HostCooperative
			icfg.Trace = obs.NewTracer(0)
			icfg.Metrics = obs.NewMetrics(0)
			res, err := core.Run(k, g, icfg)
			if err == nil && lt.name == "sell" && res.Layout != "sell" {
				break
			}
			if err == nil {
				mc := res.Engine.Mem.Counters()
				l1 := 0.0
				if mc.Accesses > 0 {
					l1 = float64(mc.Hits[machine.L1]) / float64(mc.Accesses)
				}
				recordHostExecObs(k.Name, g.Name, lt.name,
					res.Stats.LaneUtilization(res.Engine.Width()), l1,
					icfg.Trace.Len(), icfg.Metrics.Len())
				if lt.name == "sell" && res.Sell != nil {
					recordHostExecSell(k.Name, g.Name,
						res.Stats.SellLaneUtilization(res.Engine.Width()),
						res.Sell.Overhead(), res.Sell.FallbackRatio(),
						res.Stats.SellColumns)
				}
			}
			if lt.name == "csr" {
				// One instrumented recovery run per kernel (untimed):
				// checkpointing plus invariant verification under
				// transient-fault injection, so the report surfaces how many
				// checkpoints the run took and how many rollbacks the
				// injected faults cost. The timed loops below stay
				// checkpoint-free.
				rcfg := cfg
				rcfg.HostExec = core.HostCooperative
				rcfg.CheckpointEvery = 2
				rcfg.MaxRollbacks = 200
				rcfg.VerifyInvariants = true
				rcfg.Inject = fault.NewInjector(42, fault.Config{Transient: 0.05})
				if res, err := core.Run(k, g, rcfg); err == nil {
					recordHostExecRecovery(k.Name, g.Name, lt.name,
						res.Recovery.Checkpoints, res.Recovery.Rollbacks,
						res.Recovery.BadCheckpoints, res.Recovery.WastedCycles)
				}
			}
			if lt.name == "csr" {
				// Backend comparison rows: interpreter vs generated Go, both
				// under the cooperative scheduler on the calibrated CSR
				// configuration. BackendInterp pins the oracle; BackendCompiled
				// degrades to the interpreter only for uncovered programs, and
				// Result.Backend records which one actually ran.
				for _, be := range []struct {
					name string
					sel  core.Backend
				}{
					{"interp", core.BackendInterp},
					{"compiled", core.BackendCompiled},
				} {
					bcfg := cfg
					bcfg.HostExec = core.HostCooperative
					bcfg.Backend = be.sel
					b.Run(k.Name+"/"+lt.name+"/backend-"+be.name, func(b *testing.B) {
						b.ReportAllocs()
						for i := 0; i < b.N; i++ {
							if _, err := core.Run(k, g, bcfg); err != nil {
								b.Fatal(err)
							}
						}
						nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
						recordHostExecBackend(k.Name, g.Name, lt.name, be.name, nsPerOp)
					})
				}
			}
			for _, mode := range modes {
				cfg.HostExec = mode.exec
				b.Run(k.Name+"/"+lt.name+"/"+mode.name, func(b *testing.B) {
					b.ReportAllocs()
					var cycles float64
					var last *core.Result
					var ms0, ms1 runtime.MemStats
					runtime.ReadMemStats(&ms0)
					for i := 0; i < b.N; i++ {
						res, err := core.Run(k, g, cfg)
						if err != nil {
							b.Fatal(err)
						}
						cycles = res.Engine.TimeCycles()
						last = res
					}
					runtime.ReadMemStats(&ms1)
					// Attribution must come from the same engine whose TimeCycles
					// fills the row, so the report's per-class sums re-fold to
					// modeled_cycles bit-exactly. Built after the MemStats window:
					// the report map must not perturb the allocs/op series the
					// regression gate watches.
					var attrib map[string]float64
					if mode.name == "cooperative" {
						attr := last.Engine.Attribution()
						attrib = attr.ClassMap()
					}
					b.ReportMetric(cycles, "modeled-cycles")
					nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
					allocsOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
					bytesOp := float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(b.N)
					recordHostExec(k.Name, g.Name, lt.name, mode.name, cycles, nsPerOp, allocsOp, bytesOp, attrib)
				})
			}
		}
	}
	sweepLayoutFamilies(b)
}

// sweepLayoutFamilies runs the dense-sweep kernels once per graph family and
// layout (untimed, modeled cycles only) and records the per-family geomean of
// csr/sell cycles for the report note — the headline CSR-vs-SELL delta.
func sweepLayoutFamilies(b *testing.B) {
	fams := []*graph.CSR{
		graph.RMAT(12, 8, 16, 42),
		graph.Road(64, 64, 16, 42),
		graph.Random(1<<12, 8, 16, 43),
	}
	for _, raw := range fams {
		var ratios []float64
		for _, k := range kernels.All() {
			if !k.DenseSweep {
				continue
			}
			g := core.PrepareGraph(k, raw)
			var cycles [2]float64
			for i, lay := range []core.Layout{core.LayoutCSR, core.LayoutSell} {
				res, err := core.Run(k, g, core.Config{Src: g.MaxDegreeNode(), Layout: lay})
				if err != nil {
					b.Fatal(err)
				}
				cycles[i] = res.Engine.TimeCycles()
			}
			if cycles[1] > 0 {
				ratios = append(ratios, cycles[0]/cycles[1])
			}
		}
		if len(ratios) == 0 {
			continue
		}
		prod := 1.0
		for _, r := range ratios {
			prod *= r
		}
		layoutFamilyGeomeans.Lock()
		layoutFamilyGeomeans.byFamily[familyOf(raw.Name)] = math.Pow(prod, 1/float64(len(ratios)))
		layoutFamilyGeomeans.Unlock()
	}
}

// familyOf shortens generated graph names (rmat12, road-64x64, ...) to their
// family for the report's geomean map.
func familyOf(name string) string {
	for _, f := range []string{"road", "rmat", "random"} {
		if strings.HasPrefix(name, f) {
			return f
		}
	}
	return name
}
