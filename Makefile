GO ?= go

.PHONY: build vet test race race-parallel fuzz gen gen-drift bench bench-diff bench-smoke trace-smoke serve-smoke serve-load chaos crash-chaos profile ci clean

build:
	$(GO) build ./...

# Regenerate the checked-in compiled kernel backend (internal/compiled) from
# the kernel IR. Run after touching kernel programs, the IR lowering, or the
# generator itself, and commit the result; gen-drift gates it in CI.
gen:
	$(GO) generate ./...

# Drift gate: the committed generated sources must match what the generator
# emits from the current tree (CI job).
gen-drift: gen
	git diff --exit-code -- internal/compiled

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-check the scheduler and staging layers — and the generated kernel
# backend, which drives the same deferred merge machinery — with parallel
# host execution forced on for every engine the tests construct. (The scalar
# baselines in internal/baselines assume serial-immediate semantics and are
# NOT covered by this override; see DESIGN.md.)
race-parallel:
	EGACS_HOST_EXEC=parallel $(GO) test -race ./internal/spmd/... ./internal/worklist/...
	EGACS_HOST_EXEC=parallel $(GO) test -race ./internal/compiled/... ./internal/codegen/...

# Short fuzz pass over the graph readers, the service request decoder, the
# interp-vs-compiled backend differential (random graph/kernel/config draws
# must stay bit-identical across backends), and the mutation delta log
# (random op streams through Apply/Compact/WAL round-trip must fold
# identically and recover from arbitrary truncation).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadDIMACS$$' -fuzztime 10s ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzReadEdgeList$$' -fuzztime 10s ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime 10s ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzDeltaLog$$' -fuzztime 10s ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzParseQuery$$' -fuzztime 10s ./internal/serve
	$(GO) test -run '^$$' -fuzz '^FuzzBackendDifferential$$' -fuzztime 10s ./internal/core

# Wall-clock cooperative-vs-parallel comparison per kernel and graph layout
# (csr vs forced sell where the layout applies), with allocation stats,
# observability annotations (lane utilization — overall and SELL-dense-path
# only — L1 hit rate, padding overhead, fallback ratio) and recovery counters
# from one instrumented checkpointing run; writes BENCH_9.json (schema v2:
# per-row cycle_attribution class totals that re-fold to modeled_cycles
# bit-exactly) with per-kernel interp-vs-compiled backend wall columns and
# their geomean, the per-family CSR-vs-SELL modeled-cycles geomeans in the
# note, the ns/op delta against the BENCH_9.json baseline, and validates the
# written report against the bench schema. The second step runs the
# streaming-mutation experiment at small scale and folds its headline numbers
# (query p99 under sustained mutation vs static, update throughput) into the
# report as the schema-v3 mutation section.
bench:
	BENCH_OUT=$(CURDIR)/BENCH_10.json BENCH_BASELINE=$(CURDIR)/BENCH_9.json \
		$(GO) test -run '^$$' -bench '^BenchmarkHostExec$$' -benchtime 3x -benchmem .
	BENCH_MUTATE_OUT=$(CURDIR)/BENCH_10.json \
		$(GO) test -run '^TestMutateBench$$' -v -timeout 20m ./internal/bench
	EGACS_BENCH_FILE=$(CURDIR)/BENCH_10.json \
		$(GO) test -run '^TestValidateBenchFile$$' -v ./internal/obs

# Drift-free regression gate: replay the perfhist trajectory over every
# committed BENCH_*.json, then re-measure HEAD's deterministic series
# (modeled cycles per class, allocs/op) and fail on >2% regression against
# the last accepted report unless BENCH_ALLOWLIST.json waives the specific
# kernel/layout/metric (CI job).
bench-diff:
	$(GO) test -run '^TestBenchDiff' -v ./internal/obs/perfhist

# One-iteration pass over every benchmark in the repo: catches benchmarks that
# no longer compile or crash without paying for real measurement (CI job).
# The trailing egacs run exercises the SELL-C-σ layout end to end on a
# dense-sweep kernel and validates the committed bench report's schema.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) run ./cmd/egacs -bench cc -input rmat -scale test -layout sell
	$(GO) run ./cmd/egacs -bench cc -input rmat -scale test -backend interp
	EGACS_BENCH_FILE=$(CURDIR)/BENCH_10.json \
		$(GO) test -run '^TestValidateBenchFile$$' ./internal/obs

# End-to-end trace check: run a kernel with -trace, then validate the written
# file against the Chrome trace-event schema (CI job).
trace-smoke:
	$(GO) run ./cmd/egacs -bench bfs-wl -input rmat -scale test \
		-trace $(CURDIR)/trace-smoke.json -metrics $(CURDIR)/trace-smoke.jsonl
	EGACS_TRACE_FILE=$(CURDIR)/trace-smoke.json \
		$(GO) test -run '^TestTraceFileValid$$' -v ./internal/obs
	@rm -f $(CURDIR)/trace-smoke.json $(CURDIR)/trace-smoke.jsonl

# End-to-end daemon check: build the real egacs-serve binary, boot it on an
# ephemeral port with fault injection armed, hit it from concurrent clients
# with mixed query kinds, then SIGTERM it and require a clean graceful drain
# (CI job).
serve-smoke:
	$(GO) test -run '^TestServeSmoke$$' -v ./cmd/egacs-serve

# Chaos-load harness against the in-process server: concurrent tenants with
# fault injection armed plus a synchronized overload burst; asserts zero
# panics, zero silent corruption and correct 429/503 backpressure, and writes
# QPS/p50/p99 to BENCH_6.json.
serve-load:
	BENCH_SERVE_OUT=$(CURDIR)/BENCH_6.json \
		$(GO) test -run '^TestChaosLoad$$' -v ./internal/serve

# Nightly-style chaos sweep: every kernel through RunResilientVerified under
# every corruption class at escalating rates with checkpointing and invariant
# verification on. EGACS_CHAOS=full widens the seed list from the CI-sized
# default. Every run must end in a verified output or a typed error — never a
# panic or silent corruption.
chaos:
	EGACS_CHAOS=full $(GO) test -run '^TestChaos$$' -v -timeout 30m ./internal/core

# Kill-anywhere crash-recovery harness: for every named point of the mutation
# pipeline (WAL append, apply, compaction build/persist, snapshot rename,
# segment rotate/prune, epoch swap) boot the real daemon, SIGKILL it there
# mid-stream, restart on the same WAL directory, and require the recovered
# graph to be bit-identical to replaying an acked-or-longer prefix of the
# exact batches sent (nightly CI job).
crash-chaos:
	$(GO) test -run '^TestCrashRecoveryAnywhere$$' -v -timeout 20m ./cmd/egacs-serve

# CPU+heap profile of the flagship kernel under the parallel scheduler.
profile:
	$(GO) run ./cmd/egacs -bench bfs-wl -input rmat -scale bench \
		-cpuprofile cpu.prof -memprofile mem.prof
	@echo "wrote cpu.prof and mem.prof; inspect with: go tool pprof cpu.prof"

ci: vet build gen-drift race race-parallel bench-smoke bench-diff trace-smoke serve-smoke

clean:
	$(GO) clean ./...
