GO ?= go

.PHONY: build vet test race fuzz ci clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the graph readers (satellite of the robustness layer).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadDIMACS$$' -fuzztime 10s ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzReadEdgeList$$' -fuzztime 10s ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime 10s ./internal/graph

ci: vet build race

clean:
	$(GO) clean ./...
